#include "nmad/core/transfer_engine.hpp"

#include <algorithm>
#include <ostream>

#include "nmad/core/format_util.hpp"
#include "util/logging.hpp"

// ---------------------------------------------------------------------------
// Rail health lifecycle (CoreConfig::rail_health)
//
// Liveness is active and symmetric: every engine beacons on every rail (at
// most one kHeartbeat per interval per peer, piggybacked when traffic
// flows), and anything *heard* on a rail refreshes it — so a healthy but
// idle fabric stays quiet-but-alive, and detection of a dead link no
// longer depends on in-flight data timing out. Revival is epoch-fenced: a
// dead rail is probed, the peer echoes the probe's epoch, and only replies
// carrying the rail's current epoch advance probation. Any straggler from
// an earlier life — a delayed reply, a beacon inside a retransmitted wire
// image — is fenced and dropped.
// ---------------------------------------------------------------------------

namespace nmad::core {

const char* rail_health_name(RailHealth health) {
  switch (health) {
    case RailHealth::kAlive: return "alive";
    case RailHealth::kSuspect: return "suspect";
    case RailHealth::kDead: return "dead";
    case RailHealth::kProbation: return "probation";
  }
  return "?";
}

TransferEngine::TransferEngine(EngineContext& ctx, RailIndex index,
                               std::unique_ptr<drivers::Driver> driver,
                               RailInfo info)
    : ctx_(ctx), index_(index), driver_(std::move(driver)), info_(info) {
  // Track-1 deposits bypass the packet hub, yet a rail streaming one long
  // rendezvous body is the opposite of dead: count every bulk arrival as
  // liveness so the monitor does not kill a saturated rail mid-transfer.
  driver_->set_bulk_rx_handler([this](drivers::PeerAddr) {
    if (!health_on()) return;
    refresh_liveness();
  });
}

void TransferEngine::install_rx(RxSink sink) {
  driver_->set_rx_handler(
      [this, sink = std::move(sink)](drivers::RxPacket&& packet) {
        if (health_on()) refresh_liveness();
        sink(index_, std::move(packet));
      });
}

void TransferEngine::install_orphan(drivers::Driver::BulkOrphanHandler sink) {
  driver_->set_bulk_orphan_handler(std::move(sink));
}

void TransferEngine::refresh_liveness() {
  last_rx_us_ = ctx_.world.now();
  if (health_ == RailHealth::kSuspect) set_health(RailHealth::kAlive);
}

util::Status TransferEngine::send_packet(
    const Gate& gate, const util::SegmentVec& segments,
    drivers::Driver::CompletionFn on_tx_done) {
  ctx_.bus.publish({.kind = EventKind::kWireTx,
                    .gate = gate.id,
                    .rail = index_,
                    .a = segments.total_bytes(),
                    .b = 0});
  return driver_->send_packet(gate.peer, segments, std::move(on_tx_done));
}

util::Status TransferEngine::send_bulk(
    const Gate& gate, uint64_t cookie, size_t offset,
    const util::SegmentVec& segments,
    drivers::Driver::CompletionFn on_tx_done) {
  ctx_.bus.publish({.kind = EventKind::kWireTx,
                    .gate = gate.id,
                    .rail = index_,
                    .a = segments.total_bytes(),
                    .b = 1});
  return driver_->send_bulk(gate.peer, cookie, offset, segments,
                            std::move(on_tx_done));
}

util::Status TransferEngine::post_bulk_recv(simnet::BulkSink* sink) {
  return driver_->post_bulk_recv(sink);
}

void TransferEngine::cancel_bulk_recv(uint64_t cookie) {
  driver_->cancel_bulk_recv(cookie);
}

void TransferEngine::note_timeout() {
  if (ctx_.config.rail_dead_after == 0) return;
  if (!alive_) return;
  if (++consec_timeouts_ >= ctx_.config.rail_dead_after) kill();
}

void TransferEngine::set_health(RailHealth next) {
  if (health_ == next) return;
  const RailHealth prev = health_;
  health_ = next;
  ctx_.bus.publish({.kind = EventKind::kHealthTransition,
                    .rail = index_,
                    .seq = epoch_,
                    .a = static_cast<uint64_t>(prev),
                    .b = static_cast<uint64_t>(next)});
}

void TransferEngine::kill() {
  if (!alive_) return;
  alive_ = false;
  // A new epoch fences this rail's earlier life: probe replies and
  // beacons carrying the old value no longer count toward revival.
  ++epoch_;
  probation_hits_ = 0;
  last_probe_us_ = -1.0e18;  // probe at the very next health tick
  ++ctx_.stats.rails_failed;
  NMAD_LOG_WARN("nmad: node %u declares rail %u (%s) dead (epoch %u)",
                ctx_.node.id(), static_cast<unsigned>(index_),
                driver_->caps().name.c_str(), epoch_);
  // The health-transition event is the rail's obituary on the bus: the
  // scheduling layer's subscription re-homes prebuilt packets and
  // in-flight traffic before this returns (delivery is synchronous).
  set_health(RailHealth::kDead);
}

void TransferEngine::revive() {
  if (alive_) return;
  alive_ = true;
  consec_timeouts_ = 0;
  probation_hits_ = 0;
  last_rx_us_ = ctx_.world.now();
  ++ctx_.stats.rails_revived;
  NMAD_LOG_WARN("nmad: node %u revives rail %u (%s) at epoch %u",
                ctx_.node.id(), static_cast<unsigned>(index_),
                driver_->caps().name.c_str(), epoch_);
  // The scheduling layer's subscription hands the rail back to rendezvous
  // jobs whose CTS granted it, then kicks an election pass.
  set_health(RailHealth::kAlive);
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

double& TransferEngine::hb_tx_slot(GateId id) {
  if (hb_tx_us_.size() <= id) {
    hb_tx_us_.resize(std::max(ctx_.gates.size(), size_t{id} + 1), -1.0e18);
  }
  return hb_tx_us_[id];
}

OutChunk* TransferEngine::make_heartbeat_chunk(uint8_t flags,
                                               uint32_t epoch) {
  OutChunk* hb = ctx_.chunk_pool.acquire();
  hb->kind = ChunkKind::kHeartbeat;
  hb->flags = flags;
  hb->tag = 0;
  hb->seq = epoch;  // the rail epoch rides the seq field
  hb->prio = Priority::kHigh;
  hb->owner = nullptr;
  return hb;
}

void TransferEngine::maybe_inject_heartbeat(Gate& gate,
                                            PacketBuilder& builder) {
  if (!health_on()) return;
  double& last = hb_tx_slot(gate.id);
  if (ctx_.world.now() - last < ctx_.config.heartbeat_interval_us) return;
  OutChunk* hb = make_heartbeat_chunk(kFlagNone, epoch_);
  if (!builder.fits(*hb)) {
    ctx_.chunk_pool.release(hb);
    return;
  }
  builder.add(hb);
  last = ctx_.world.now();
  ++ctx_.stats.heartbeats_sent;
}

void TransferEngine::send_standalone_heartbeat(Gate& gate, uint8_t flags,
                                               uint32_t epoch) {
  auto builder = std::make_shared<PacketBuilder>(
      std::min(gate.max_packet, info_.max_packet_bytes),
      info_.gather ? info_.max_gather_segments : 0, ctx_.config.wire_checksum,
      /*reserve_seq=*/true);
  builder->add(make_heartbeat_chunk(flags, epoch));
  // Refresh the beacon slot before the issue path, which would otherwise
  // piggyback a second (now redundant) plain beacon onto this packet.
  hb_tx_slot(gate.id) = ctx_.world.now();
  if ((flags & kFlagProbe) != 0) {
    ++ctx_.stats.probes_sent;
  } else if ((flags & kFlagReply) != 0) {
    ++ctx_.stats.probe_replies_sent;
  } else {
    ++ctx_.stats.heartbeats_sent;
  }
  issuer_->issue_standalone(gate, index_, std::move(builder));
}

void TransferEngine::start_monitor(double now) {
  last_rx_us_ = now;  // silence is counted from connect, not time zero
  health_timer_armed_ = true;
  health_timer_ = ctx_.world.after(ctx_.config.heartbeat_interval_us,
                                   [this]() { on_health_tick(); });
}

void TransferEngine::stop_monitor() {
  if (health_timer_armed_) {
    ctx_.world.cancel(health_timer_);
    health_timer_armed_ = false;
  }
}

void TransferEngine::on_health_tick() {
  health_timer_armed_ = false;
  const double now = ctx_.world.now();

  if (alive_) {
    if (now - last_rx_us_ >= ctx_.config.dead_after_us) {
      // Sustained silence despite our beacons provoking acks: the link is
      // gone. kill() re-elects its in-flight traffic (via the bus) and
      // bumps the epoch; the dead branch below starts probing for revival.
      kill();
    } else {
      if (now - last_rx_us_ >= ctx_.config.suspect_after_us) {
        if (health_ == RailHealth::kAlive) {
          set_health(RailHealth::kSuspect);
          ++ctx_.stats.rails_suspected;
        }
      }
      // Beacon duty: one standalone heartbeat per tick, to the peer that
      // has waited longest (piggybacking covers the rest when traffic
      // flows). One per tick keeps the NIC contention negligible; the
      // suspect/dead thresholds leave room for the rotation.
      if (driver_->tx_idle()) {
        Gate* stalest = nullptr;
        double stalest_at = 0.0;
        for (auto& gate_ptr : ctx_.gates) {
          Gate& g = *gate_ptr;
          if (g.failed || !g.has_rail(index_)) continue;
          const double at = hb_tx_slot(g.id);
          if (stalest == nullptr || at < stalest_at) {
            stalest = &g;
            stalest_at = at;
          }
        }
        if (stalest != nullptr &&
            now - stalest_at >= ctx_.config.heartbeat_interval_us) {
          send_standalone_heartbeat(*stalest, kFlagNone, epoch_);
        }
      }
    }
  } else {
    if (health_ == RailHealth::kProbation &&
        now - last_fresh_reply_us_ > 2.0 * ctx_.config.probe_interval_us) {
      // Replies dried up mid-probation: back to dead under a new epoch,
      // so stragglers from the aborted attempt cannot count again.
      set_health(RailHealth::kDead);
      ++epoch_;
      probation_hits_ = 0;
      ++ctx_.stats.probation_demotions;
    }
    if (now - last_probe_us_ >= ctx_.config.probe_interval_us &&
        driver_->tx_idle()) {
      last_probe_us_ = now;
      // Any peer's reply is proof the local link works; probe the first
      // live gate on the rail.
      for (auto& gate_ptr : ctx_.gates) {
        Gate& g = *gate_ptr;
        if (g.failed || !g.has_rail(index_)) continue;
        send_standalone_heartbeat(g, kFlagProbe, epoch_);
        break;
      }
    }
  }

  health_timer_armed_ = true;
  health_timer_ = ctx_.world.after(ctx_.config.heartbeat_interval_us,
                                   [this]() { on_health_tick(); });
}

void TransferEngine::handle_heartbeat(Gate& gate, const WireChunk& chunk) {
  if ((chunk.flags & kFlagProbe) != 0) {
    // The probe reached us, which is itself proof the link carries
    // traffic; echo its epoch back so the prober can fence replies that
    // straddle a further death. Replying is best-effort — the prober
    // retries on its own schedule.
    if (!gate.failed && driver_->tx_idle()) {
      send_standalone_heartbeat(gate, kFlagReply, chunk.seq);
    }
    return;
  }
  if ((chunk.flags & kFlagReply) != 0) {
    if (alive_ || chunk.seq != epoch_) {
      // A reply for an epoch this rail has moved past (or a rail that
      // already revived): it proves nothing about the current life.
      ++ctx_.stats.heartbeats_fenced;
      return;
    }
    set_health(RailHealth::kProbation);
    last_fresh_reply_us_ = ctx_.world.now();
    if (++probation_hits_ >= ctx_.config.probation_replies) {
      revive();
    }
    return;
  }
  // Plain beacon. The peer's epoch only ever grows; an older value is a
  // stale wire image (a beacon piggybacked on a packet that was flattened
  // for retransmission before the peer's rail died) — fence it.
  if (chunk.seq < peer_epoch_) {
    ++ctx_.stats.heartbeats_fenced;
    return;
  }
  peer_epoch_ = chunk.seq;
  ++ctx_.stats.heartbeats_received;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

void TransferEngine::dump_health(std::ostream& out) const {
  if (!health_on()) return;
  dumpf(out, " health=%s epoch=%u peer_epoch=%u heard=%.0fus_ago",
        rail_health_name(health_), epoch_, peer_epoch_,
        ctx_.world.now() - last_rx_us_);
  if (health_ == RailHealth::kProbation) {
    dumpf(out, " probation=%u/%u", probation_hits_,
          ctx_.config.probation_replies);
  }
}

void TransferEngine::check(size_t display_index,
                           std::vector<std::string>& out) const {
  const bool health_says_alive = health_ == RailHealth::kAlive ||
                                 health_ == RailHealth::kSuspect;
  if (alive_ != health_says_alive) {
    addf(out, "rail %zu: alive=%d but health=%s", display_index,
         alive_ ? 1 : 0, rail_health_name(health_));
  }
  if (!alive_ && epoch_ == 0) {
    addf(out, "rail %zu: dead without ever bumping its epoch",
         display_index);
  }
  if (probation_hits_ != 0 && health_ != RailHealth::kProbation) {
    addf(out, "rail %zu: probation hits outside probation (health=%s)",
         display_index, rail_health_name(health_));
  }
  if (health_ == RailHealth::kProbation &&
      probation_hits_ >= ctx_.config.probation_replies) {
    addf(out,
         "rail %zu: %u probation hits reached the revival bar without "
         "reviving",
         display_index, probation_hits_);
  }
}

}  // namespace nmad::core
