// Compiled-in protocol invariant checking (CMake option NMAD_VALIDATE).
//
// check_invariants() re-derives every piece of bookkeeping from first
// principles and compares it against the engine's incremental counters.
// Each layer audits only its own state — ScheduleLayer::check_gate (the
// window vs. credit accounting, the rendezvous send pipeline, the
// reliability windows), CollectLayer::check_gate (the unexpected store's
// tombstones, the matching structures), TransferEngine::check (the
// alive/health state machine) — and this file keeps the seams: the
// collect layer's actual store vs. the scheduler's gauge, and the
// engine-wide rx budget. Violations are tallied per layer into the
// validate_violations_* stats so a failure report names its owner.
//
// The walk is deliberately O(state) — it runs on every progress tick in
// validating builds, so a violation is caught within one event of the
// state transition that introduced it, while the schedule that produced
// it is still on the stack.
//
// The checks here are *internal consistency*; the end-to-end contract
// (FIFO matching, payload integrity, exactly-once completion) lives in
// the test harness oracle, which shadows the engine from outside.
#include <algorithm>
#include <cstdio>

#include "nmad/core/core.hpp"
#include "nmad/core/format_util.hpp"
#include "util/assert.hpp"

namespace nmad::core {

namespace {
using ULL = unsigned long long;
}  // namespace

bool Core::check_invariants(std::vector<std::string>* failures) const {
  ValidateReport report;
  return check_invariants_report(failures, &report);
}

bool Core::check_invariants_report(std::vector<std::string>* failures,
                                   ValidateReport* report) const {
  std::vector<std::string> local;
  std::vector<std::string>& out = failures != nullptr ? *failures : local;
  const size_t before = out.size();

  uint64_t stored_bytes_total = 0;
  uint64_t stored_chunks_total = 0;
  size_t max_packet_max = 0;

  for (const auto& gate_ptr : gates_) {
    const Gate& g = *gate_ptr;
    if (g.failed) continue;  // fail_gate already tore this state down
    max_packet_max = std::max(max_packet_max, g.max_packet);
    stored_bytes_total += g.sched.stored_bytes;
    stored_chunks_total += g.sched.stored_chunks;

    size_t mark = out.size();
    sched_.check_gate(g, out);
    report->schedule += out.size() - mark;

    mark = out.size();
    collect_.check_gate(g, out);
    report->collect += out.size() - mark;

    // --- the collect/schedule seam ----------------------------------------
    // The scheduler's gauge is incremental (charged/discharged as
    // fragments park and drain); the collect layer's store is the ground
    // truth. They must agree byte for byte.
    mark = out.size();
    const auto [exp_bytes, exp_chunks] = collect_.count_store(g);
    if (exp_bytes != g.sched.stored_bytes ||
        exp_chunks != g.sched.stored_chunks) {
      addf(out,
           "gate %u: unexpected store holds %zu bytes / %zu chunks but "
           "the gauge says %zu/%zu",
           g.id, exp_bytes, exp_chunks, g.sched.stored_bytes,
           g.sched.stored_chunks);
    }
    report->engine += out.size() - mark;
  }

  // --- transfer layer ------------------------------------------------------
  size_t mark = out.size();
  for (size_t r = 0; r < rails_.size(); ++r) rails_[r]->check(r, out);
  report->transfer += out.size() - mark;

  // --- cross-gate gauges (engine level) ------------------------------------
  mark = out.size();
  if (stored_bytes_total != stats_.rx_stored_bytes) {
    addf(out,
         "unexpected-store gauge %llu disagrees with the per-gate sum "
         "%llu",
         static_cast<ULL>(stats_.rx_stored_bytes),
         static_cast<ULL>(stored_bytes_total));
  }
  if (stats_.rx_stored_hwm < stats_.rx_stored_bytes) {
    addf(out, "rx store high-water mark %llu below the gauge %llu",
         static_cast<ULL>(stats_.rx_stored_hwm),
         static_cast<ULL>(stats_.rx_stored_bytes));
  }
  // The receiver's budget promise: parked eager payload never exceeds the
  // configured budget (floored at one max packet, as refresh_advert
  // grants). Holds whenever the config rule "sum of initial grants stays
  // within the budget" is respected.
  if (config_.flow_control && config_.rx_budget != 0) {
    const uint64_t budget =
        std::max<uint64_t>(config_.rx_budget, max_packet_max);
    if (stored_bytes_total > budget) {
      addf(out, "rx budget exceeded: %llu bytes parked, budget %llu",
           static_cast<ULL>(stored_bytes_total), static_cast<ULL>(budget));
    }
  }
  if (config_.flow_control && config_.rx_budget_msgs != 0) {
    const uint64_t budget = std::max<uint64_t>(config_.rx_budget_msgs, 1);
    if (stored_chunks_total > budget) {
      addf(out, "rx chunk budget exceeded: %llu parked, budget %llu",
           static_cast<ULL>(stored_chunks_total), static_cast<ULL>(budget));
    }
  }
  report->engine += out.size() - mark;

  return out.size() == before;
}

void Core::validate_invariants() {
  ++stats_.validate_ticks;
  std::vector<std::string> failures;
  ValidateReport report;
  if (check_invariants_report(&failures, &report)) return;
  stats_.validate_violations += failures.size();
  stats_.validate_violations_collect += report.collect;
  stats_.validate_violations_schedule += report.schedule;
  stats_.validate_violations_transfer += report.transfer;
  stats_.validate_violations_engine += report.engine;
  if (validate_failure_handler_) {
    validate_failure_handler_(failures);
    return;
  }
  std::fprintf(stderr,
               "nmad: node %u: %zu protocol invariant violation(s):\n",
               rt_.local_id(), failures.size());
  for (const std::string& f : failures) {
    std::fprintf(stderr, "  %s\n", f.c_str());
  }
  // The dump ends with the event-bus trace: the last thing the engine did
  // before the violation, in order.
  debug_dump(std::cerr);
  util::assert_fail("protocol invariants hold", __FILE__, __LINE__,
                    failures.front().c_str());
}

void Core::set_validate_failure_handler(ValidateFailureHandler handler) {
  validate_failure_handler_ = std::move(handler);
}

}  // namespace nmad::core
