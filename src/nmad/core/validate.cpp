// Compiled-in protocol invariant checking (CMake option NMAD_VALIDATE).
//
// check_invariants() re-derives every piece of per-gate bookkeeping from
// first principles and compares it against the engine's incremental
// counters: the optimization window vs. the credit accounting, the
// unexpected store vs. its gauge and the rx budget, the reliability
// window vs. its timers, and the matching structures against each other.
// The walk is deliberately O(state) — it runs on every progress tick in
// validating builds, so a violation is caught within one event of the
// state transition that introduced it, while the schedule that produced
// it is still on the stack.
//
// The checks here are *internal consistency*; the end-to-end contract
// (FIFO matching, payload integrity, exactly-once completion) lives in
// the test harness oracle, which shadows the engine from outside.
#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "nmad/core/core.hpp"
#include "util/assert.hpp"

namespace nmad::core {
namespace {

[[gnu::format(printf, 2, 3)]]
void addf(std::vector<std::string>& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out.emplace_back(buf);
}

using ULL = unsigned long long;

}  // namespace

bool Core::check_invariants(std::vector<std::string>* failures) const {
  std::vector<std::string> local;
  std::vector<std::string>& out = failures != nullptr ? *failures : local;
  const size_t before = out.size();

  uint64_t stored_bytes_total = 0;
  uint64_t stored_chunks_total = 0;
  size_t max_packet_max = 0;

  for (const auto& gate_ptr : gates_) {
    const Gate& g = *gate_ptr;
    if (g.failed) continue;  // fail_gate already tore this state down
    max_packet_max = std::max(max_packet_max, g.max_packet);
    stored_bytes_total += g.stored_bytes;
    stored_chunks_total += g.stored_chunks;

    // --- send window ----------------------------------------------------
    // Control chunks never carry an owner; payload chunks always do, and
    // a completed send can have nothing left in the window (its parts are
    // what completion counts down).
    uint64_t win_uncharged = 0;
    for (const OutChunk& c : g.window) {
      if (c.is_control()) {
        if (c.owner != nullptr) {
          addf(out, "gate %u: %s control chunk carries an owner", g.id,
               chunk_kind_name(c.kind));
        }
        continue;
      }
      if (c.owner == nullptr) {
        addf(out, "gate %u: payload chunk (tag %llu seq %u) has no owner",
             g.id, static_cast<ULL>(c.tag), c.seq);
      } else if (c.owner->done()) {
        addf(out,
             "gate %u: window chunk owned by a completed send "
             "(tag %llu seq %u)",
             g.id, static_cast<ULL>(c.tag), c.seq);
      }
      if (!c.credit_charged) win_uncharged += c.payload.size();
    }

    // --- flow control ---------------------------------------------------
    if (config_.flow_control) {
      if (win_uncharged != g.window_eager_bytes) {
        addf(out,
             "gate %u: window_eager_bytes=%llu but the window holds %llu "
             "uncharged payload bytes (a charge was skipped or doubled)",
             g.id, static_cast<ULL>(g.window_eager_bytes),
             static_cast<ULL>(win_uncharged));
      }
      if (g.eager_sent_bytes > g.credit_limit_bytes) {
        addf(out, "gate %u: charged %llu eager bytes past the limit %llu",
             g.id, static_cast<ULL>(g.eager_sent_bytes),
             static_cast<ULL>(g.credit_limit_bytes));
      }
      if (g.eager_sent_chunks > g.credit_limit_chunks) {
        addf(out, "gate %u: charged %llu eager chunks past the limit %llu",
             g.id, static_cast<ULL>(g.eager_sent_chunks),
             static_cast<ULL>(g.credit_limit_chunks));
      }
      if (g.eager_heard_bytes > g.advertised_limit_bytes) {
        addf(out,
             "gate %u: heard %llu eager bytes but only advertised %llu "
             "(peer sent uncharged traffic)",
             g.id, static_cast<ULL>(g.eager_heard_bytes),
             static_cast<ULL>(g.advertised_limit_bytes));
      }
      if (g.eager_heard_chunks > g.advertised_limit_chunks) {
        addf(out,
             "gate %u: heard %llu eager chunks but only advertised %llu",
             g.id, static_cast<ULL>(g.eager_heard_chunks),
             static_cast<ULL>(g.advertised_limit_chunks));
      }
      if (g.last_sent_limit_bytes > g.advertised_limit_bytes ||
          g.last_sent_limit_chunks > g.advertised_limit_chunks) {
        addf(out,
             "gate %u: a limit on the wire (%llu/%llu) exceeds the "
             "advertised limit (%llu/%llu) — adverts must be monotone",
             g.id, static_cast<ULL>(g.last_sent_limit_bytes),
             static_cast<ULL>(g.last_sent_limit_chunks),
             static_cast<ULL>(g.advertised_limit_bytes),
             static_cast<ULL>(g.advertised_limit_chunks));
      }
    }

    // --- unexpected store ------------------------------------------------
    size_t exp_bytes = 0;
    size_t exp_chunks = 0;
    for (const auto& [key, msg] : g.unexpected) {
      if (msg.peer_cancelled && (!msg.frags.empty() || !msg.rts.empty())) {
        addf(out,
             "gate %u: tombstoned unexpected message (tag %llu seq %u) "
             "still holds data",
             g.id, static_cast<ULL>(key.first), key.second);
      }
      for (const StoredFrag& frag : msg.frags) {
        exp_bytes += frag.data.view().size();
        if (!frag.data.view().empty()) ++exp_chunks;
      }
      if (g.active_recv.count(key) != 0) {
        addf(out,
             "gate %u: message (tag %llu seq %u) both matched and parked "
             "as unexpected",
             g.id, static_cast<ULL>(key.first), key.second);
      }
      if (g.cancelled_recv.count(key) != 0) {
        addf(out,
             "gate %u: message (tag %llu seq %u) both cancelled and "
             "parked as unexpected",
             g.id, static_cast<ULL>(key.first), key.second);
      }
    }
    if (exp_bytes != g.stored_bytes || exp_chunks != g.stored_chunks) {
      addf(out,
           "gate %u: unexpected store holds %zu bytes / %zu chunks but "
           "the gauge says %zu/%zu",
           g.id, exp_bytes, exp_chunks, g.stored_bytes, g.stored_chunks);
    }

    // --- receive matching ------------------------------------------------
    for (const auto& [key, req] : g.active_recv) {
      if (req == nullptr) {
        addf(out, "gate %u: null receive matched (tag %llu seq %u)", g.id,
             static_cast<ULL>(key.first), key.second);
        continue;
      }
      if (req->done()) {
        addf(out,
             "gate %u: completed receive still matched (tag %llu seq %u)",
             g.id, static_cast<ULL>(key.first), key.second);
      }
      if (req->tag() != key.first || req->seq() != key.second) {
        addf(out,
             "gate %u: active_recv key (tag %llu seq %u) does not match "
             "its request (tag %llu seq %u)",
             g.id, static_cast<ULL>(key.first), key.second,
             static_cast<ULL>(req->tag()), req->seq());
      }
      if (g.cancelled_recv.count(key) != 0) {
        addf(out,
             "gate %u: receive (tag %llu seq %u) both active and "
             "cancelled",
             g.id, static_cast<ULL>(key.first), key.second);
      }
    }
    for (const auto& [cookie, rec] : g.rdv_recv) {
      if (rec.request == nullptr || rec.request->done()) {
        addf(out,
             "gate %u: rendezvous receive (cookie %llu) without a live "
             "request",
             g.id, static_cast<ULL>(cookie));
        continue;
      }
      const MsgKey key{rec.request->tag(), rec.request->seq()};
      auto it = g.active_recv.find(key);
      if (it == g.active_recv.end() || it->second != rec.request) {
        addf(out,
             "gate %u: rendezvous receive (cookie %llu) not in "
             "active_recv",
             g.id, static_cast<ULL>(cookie));
      }
    }

    // --- rendezvous send side --------------------------------------------
    for (const auto& [cookie, job] : g.rdv_wait_cts) {
      if (job == nullptr || job->cookie != cookie || job->gate != g.id) {
        addf(out, "gate %u: corrupt parked rendezvous (cookie %llu)", g.id,
             static_cast<ULL>(cookie));
        continue;
      }
      if (job->sent != 0 || job->acked != 0) {
        addf(out,
             "gate %u: rendezvous body (cookie %llu) moved before its CTS",
             g.id, static_cast<ULL>(cookie));
      }
      if (job->owner == nullptr || job->owner->done()) {
        addf(out,
             "gate %u: parked rendezvous (cookie %llu) without a live "
             "owner",
             g.id, static_cast<ULL>(cookie));
      }
    }
    for (const BulkJob& job : g.ready_bulk) {
      if (job.gate != g.id) {
        addf(out, "gate %u: ready bulk job belongs to gate %u", g.id,
             job.gate);
      }
      if (job.owner == nullptr || job.owner->done()) {
        addf(out, "gate %u: ready bulk job (cookie %llu) without a live "
             "owner",
             g.id, static_cast<ULL>(job.cookie));
      }
      if (job.sent > job.body.size() || job.acked > job.sent) {
        addf(out,
             "gate %u: bulk job (cookie %llu) accounting sent=%zu "
             "acked=%zu body=%zu",
             g.id, static_cast<ULL>(job.cookie), job.sent, job.acked,
             job.body.size());
      }
      if (job.all_sent()) {
        addf(out,
             "gate %u: fully-sent bulk job (cookie %llu) still on the "
             "ready list",
             g.id, static_cast<ULL>(job.cookie));
      }
    }

    // --- reliability -----------------------------------------------------
    if (config_.reliability) {
      if (g.pending_pkts.size() > config_.reliability_window) {
        addf(out, "gate %u: %zu unacked packets exceed the window cap %zu",
             g.id, g.pending_pkts.size(), config_.reliability_window);
      }
      for (const auto& [seq, p] : g.pending_pkts) {
        if (seq >= g.next_pkt_seq) {
          addf(out, "gate %u: pending packet seq %u beyond next seq %u",
               g.id, seq, g.next_pkt_seq);
        }
        if (p.wire == nullptr || p.wire->view().empty()) {
          addf(out, "gate %u: pending packet seq %u has no wire image",
               g.id, seq);
        }
        // Liveness: an unacked packet with neither a ticking timer nor a
        // place in the retransmit queue will never be recovered.
        if (!p.timer_armed && !p.queued_retx) {
          addf(out,
               "gate %u: pending packet seq %u neither timed nor queued "
               "for retransmit",
               g.id, seq);
        }
        if (p.queued_retx &&
            std::find(g.retx_queue.begin(), g.retx_queue.end(), seq) ==
                g.retx_queue.end()) {
          addf(out,
               "gate %u: packet seq %u marked queued but absent from the "
               "retransmit queue",
               g.id, seq);
        }
        for (const SendRequest* owner : p.owners) {
          if (owner != nullptr && owner->done()) {
            addf(out,
                 "gate %u: pending packet seq %u owned by a completed "
                 "send",
                 g.id, seq);
          }
        }
      }
      for (const auto& [key, p] : g.pending_bulk) {
        if (p.job == nullptr) {
          addf(out, "gate %u: pending bulk slice (cookie %llu) has no job",
               g.id, static_cast<ULL>(key.first));
          continue;
        }
        if (!p.timer_armed && !p.queued_retx) {
          addf(out,
               "gate %u: bulk slice (cookie %llu offset %zu) neither "
               "timed nor queued for retransmit",
               g.id, static_cast<ULL>(key.first), key.second);
        }
        if (p.queued_retx &&
            std::find(g.bulk_retx.begin(), g.bulk_retx.end(), key) ==
                g.bulk_retx.end()) {
          addf(out,
               "gate %u: bulk slice (cookie %llu offset %zu) marked "
               "queued but absent from the retransmit queue",
               g.id, static_cast<ULL>(key.first), key.second);
        }
        if (p.offset + p.len > p.job->body.size()) {
          addf(out,
               "gate %u: bulk slice (cookie %llu) extent %zu+%zu exceeds "
               "the body (%zu bytes)",
               g.id, static_cast<ULL>(key.first), p.offset, p.len,
               p.job->body.size());
        }
        if (p.job->owner == nullptr || p.job->owner->done()) {
          addf(out,
               "gate %u: in-flight bulk slice (cookie %llu) without a "
               "live owner",
               g.id, static_cast<ULL>(key.first));
        }
      }
      // The dedup set only keeps seqs the floor has not swallowed yet.
      if (!g.recv_seen.empty() && *g.recv_seen.begin() <= g.recv_floor) {
        addf(out,
             "gate %u: seq dedup set reaches down to %u at/below the "
             "floor %u",
             g.id, *g.recv_seen.begin(), g.recv_floor);
      }
    } else if (!g.pending_pkts.empty() || !g.pending_bulk.empty() ||
               !g.retx_queue.empty() || !g.bulk_retx.empty()) {
      addf(out, "gate %u: reliability state without the reliability layer",
           g.id);
    }
  }

  // --- rail health lifecycle ----------------------------------------------
  // The boolean alive flag and the four-state health machine must agree,
  // and the epoch must witness every death (it bumps on each one).
  for (size_t r = 0; r < rails_.size(); ++r) {
    const RailState& rs = rails_[r];
    const bool healthy = rs.health == RailHealth::kAlive ||
                         rs.health == RailHealth::kSuspect;
    if (rs.alive != healthy) {
      addf(out, "rail %zu: alive=%d but health=%s", r, rs.alive ? 1 : 0,
           rail_health_name(rs.health));
    }
    if (!rs.alive && rs.epoch == 0) {
      addf(out, "rail %zu: dead with epoch 0 (death must bump the epoch)",
           r);
    }
    if (rs.probation_hits != 0 && rs.health != RailHealth::kProbation) {
      addf(out, "rail %zu: %u probation hits outside probation (health=%s)",
           r, rs.probation_hits, rail_health_name(rs.health));
    }
    if (config_.rail_health && rs.probation_hits >= config_.probation_replies &&
        !rs.alive) {
      addf(out, "rail %zu: %u probation hits reached the revival bar (%u) "
           "without reviving",
           r, rs.probation_hits, config_.probation_replies);
    }
  }

  // --- cross-gate gauges -------------------------------------------------
  if (stored_bytes_total != stats_.rx_stored_bytes) {
    addf(out,
         "unexpected-store gauge %llu disagrees with the per-gate sum "
         "%llu",
         static_cast<ULL>(stats_.rx_stored_bytes),
         static_cast<ULL>(stored_bytes_total));
  }
  if (stats_.rx_stored_hwm < stats_.rx_stored_bytes) {
    addf(out, "rx store high-water mark %llu below the gauge %llu",
         static_cast<ULL>(stats_.rx_stored_hwm),
         static_cast<ULL>(stats_.rx_stored_bytes));
  }
  // The receiver's budget promise: parked eager payload never exceeds the
  // configured budget (floored at one max packet, as refresh_advert
  // grants). Holds whenever the config rule "sum of initial grants stays
  // within the budget" is respected.
  if (config_.flow_control && config_.rx_budget != 0) {
    const uint64_t budget =
        std::max<uint64_t>(config_.rx_budget, max_packet_max);
    if (stored_bytes_total > budget) {
      addf(out, "rx budget exceeded: %llu bytes parked, budget %llu",
           static_cast<ULL>(stored_bytes_total), static_cast<ULL>(budget));
    }
  }
  if (config_.flow_control && config_.rx_budget_msgs != 0) {
    const uint64_t budget = std::max<uint64_t>(config_.rx_budget_msgs, 1);
    if (stored_chunks_total > budget) {
      addf(out, "rx chunk budget exceeded: %llu parked, budget %llu",
           static_cast<ULL>(stored_chunks_total), static_cast<ULL>(budget));
    }
  }

  return out.size() == before;
}

void Core::validate_invariants() {
  ++stats_.validate_ticks;
  std::vector<std::string> failures;
  if (check_invariants(&failures)) return;
  stats_.validate_violations += failures.size();
  if (validate_failure_handler_) {
    validate_failure_handler_(failures);
    return;
  }
  std::fprintf(stderr,
               "nmad: node %u: %zu protocol invariant violation(s):\n",
               node_.id(), failures.size());
  for (const std::string& f : failures) {
    std::fprintf(stderr, "  %s\n", f.c_str());
  }
  debug_dump(stderr);
  util::assert_fail("protocol invariants hold", __FILE__, __LINE__,
                    failures.front().c_str());
}

void Core::set_validate_failure_handler(ValidateFailureHandler handler) {
  validate_failure_handler_ = std::move(handler);
}

}  // namespace nmad::core
