#include "nmad/core/strategy.hpp"

#include <algorithm>
#include <map>

namespace nmad::core {
namespace {

std::map<std::string, StrategyFactory>& registry() {
  static std::map<std::string, StrategyFactory> map;
  return map;
}

}  // namespace

bool register_strategy(const std::string& name, StrategyFactory factory) {
  return registry().emplace(name, std::move(factory)).second;
}

std::unique_ptr<Strategy> make_strategy(const std::string& name) {
  auto it = registry().find(name);
  if (it == registry().end()) return nullptr;
  return it->second();
}

std::vector<std::string> strategy_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

}  // namespace nmad::core
