#include "nmad/core/wire_format.hpp"

namespace nmad::core {

void encode_packet_header(util::WireWriter& w, uint16_t chunk_count,
                          uint8_t flags) {
  w.u16(chunk_count);
  w.u8(flags);
}

namespace {
void encode_common(util::WireWriter& w, ChunkKind kind, uint8_t flags,
                   Tag tag, SeqNum seq) {
  w.u8(static_cast<uint8_t>(kind));
  w.u8(flags);
  w.u64(tag);
  w.u32(seq);
}
}  // namespace

void encode_data_header(util::WireWriter& w, uint8_t flags, Tag tag,
                        SeqNum seq, uint32_t len) {
  encode_common(w, ChunkKind::kData, flags, tag, seq);
  w.u32(len);
}

void encode_frag_header(util::WireWriter& w, uint8_t flags, Tag tag,
                        SeqNum seq, uint32_t len, uint32_t offset,
                        uint32_t total) {
  encode_common(w, ChunkKind::kFrag, flags, tag, seq);
  w.u32(len);
  w.u32(offset);
  w.u32(total);
}

void encode_rts(util::WireWriter& w, uint8_t flags, Tag tag, SeqNum seq,
                uint32_t len, uint32_t offset, uint32_t total,
                uint64_t cookie) {
  encode_common(w, ChunkKind::kRts, flags, tag, seq);
  w.u32(len);
  w.u32(offset);
  w.u32(total);
  w.u64(cookie);
}

void encode_cts(util::WireWriter& w, Tag tag, SeqNum seq, uint64_t cookie,
                const std::vector<uint8_t>& rails) {
  encode_common(w, ChunkKind::kCts, /*flags=*/0, tag, seq);
  w.u32(0);  // len unused for cts
  w.u64(cookie);
  w.u8(static_cast<uint8_t>(rails.size()));
  for (uint8_t rail : rails) w.u8(rail);
}

size_t chunk_wire_bytes(ChunkKind kind, size_t payload_len,
                        size_t cts_rail_count) {
  switch (kind) {
    case ChunkKind::kData: return kDataHeaderBytes + payload_len;
    case ChunkKind::kFrag: return kFragHeaderBytes + payload_len;
    case ChunkKind::kRts: return kRtsHeaderBytes;
    case ChunkKind::kCts: return kCtsHeaderBytes + cts_rail_count;
  }
  return 0;
}

}  // namespace nmad::core
