#include "nmad/core/wire_format.hpp"

namespace nmad::core {

void encode_packet_header(util::WireWriter& w, uint16_t chunk_count,
                          uint8_t flags) {
  w.u16(chunk_count);
  w.u8(flags);
}

namespace {
void encode_common(util::WireWriter& w, ChunkKind kind, uint8_t flags,
                   Tag tag, SeqNum seq) {
  w.u8(static_cast<uint8_t>(kind));
  w.u8(flags);
  w.u64(tag);
  w.u32(seq);
}
}  // namespace

void encode_data_header(util::WireWriter& w, uint8_t flags, Tag tag,
                        SeqNum seq, uint32_t len) {
  encode_common(w, ChunkKind::kData, flags, tag, seq);
  w.u32(len);
}

void encode_frag_header(util::WireWriter& w, uint8_t flags, Tag tag,
                        SeqNum seq, uint32_t len, uint32_t offset,
                        uint32_t total) {
  encode_common(w, ChunkKind::kFrag, flags, tag, seq);
  w.u32(len);
  w.u32(offset);
  w.u32(total);
}

void encode_rts(util::WireWriter& w, uint8_t flags, Tag tag, SeqNum seq,
                uint32_t len, uint32_t offset, uint32_t total,
                uint64_t cookie) {
  encode_common(w, ChunkKind::kRts, flags, tag, seq);
  w.u32(len);
  w.u32(offset);
  w.u32(total);
  w.u64(cookie);
}

void encode_cts(util::WireWriter& w, uint8_t flags, Tag tag, SeqNum seq,
                uint64_t cookie, const std::vector<uint8_t>& rails) {
  encode_common(w, ChunkKind::kCts, flags, tag, seq);
  w.u32(0);  // len unused for cts
  w.u64(cookie);
  w.u8(static_cast<uint8_t>(rails.size()));
  for (uint8_t rail : rails) w.u8(rail);
}

void encode_ack(util::WireWriter& w, uint32_t ack_floor,
                const std::vector<uint32_t>& sacks,
                const std::vector<BulkAck>& bulk_acks) {
  NMAD_ASSERT(sacks.size() <= 255 && bulk_acks.size() <= 255);
  // The common header's seq field carries the cumulative ack floor; tag
  // is unused (acks cover the whole gate, not one message stream).
  encode_common(w, ChunkKind::kAck, /*flags=*/0, /*tag=*/0, ack_floor);
  w.u8(static_cast<uint8_t>(sacks.size()));
  w.u8(static_cast<uint8_t>(bulk_acks.size()));
  for (uint32_t seq : sacks) w.u32(seq);
  for (const BulkAck& ack : bulk_acks) {
    w.u64(ack.cookie);
    w.u32(ack.offset);
    w.u32(ack.len);
  }
}

void encode_credit(util::WireWriter& w, uint64_t credit_bytes,
                   uint64_t credit_chunks) {
  // Credits cover the whole gate: tag and seq are unused, like kAck.
  encode_common(w, ChunkKind::kCredit, /*flags=*/0, /*tag=*/0, /*seq=*/0);
  w.u64(credit_bytes);
  w.u64(credit_chunks);
}

void encode_heartbeat(util::WireWriter& w, uint8_t flags, uint32_t epoch,
                      uint32_t incarnation, uint64_t gen) {
  // Heartbeats cover one rail of the whole gate: the seq field carries
  // the rail epoch (kAck precedent for reusing seq) and the tag field
  // carries the gate's unwind generation (rejoin fence).
  encode_common(w, ChunkKind::kHeartbeat, flags, /*tag=*/gen, epoch);
  w.u32(incarnation);
}

void encode_spray_frag_header(util::WireWriter& w, uint8_t flags, Tag tag,
                              SeqNum seq, uint32_t len, uint32_t offset,
                              uint32_t total, uint32_t frag_seq,
                              uint32_t epoch) {
  encode_common(w, ChunkKind::kSprayFrag, flags, tag, seq);
  w.u32(len);
  w.u32(offset);
  w.u32(total);
  w.u32(frag_seq);
  w.u32(epoch);
}

size_t chunk_wire_bytes(ChunkKind kind, size_t payload_len,
                        size_t cts_rail_count, size_t ack_sacks,
                        size_t ack_bulks) {
  switch (kind) {
    case ChunkKind::kData: return kDataHeaderBytes + payload_len;
    case ChunkKind::kFrag: return kFragHeaderBytes + payload_len;
    case ChunkKind::kRts: return kRtsHeaderBytes;
    case ChunkKind::kCts: return kCtsHeaderBytes + cts_rail_count;
    case ChunkKind::kAck:
      return kAckHeaderBytes + ack_sacks * kAckSackBytes +
             ack_bulks * kAckBulkBytes;
    case ChunkKind::kCredit: return kCreditHeaderBytes;
    case ChunkKind::kHeartbeat: return kHeartbeatHeaderBytes;
    case ChunkKind::kSprayFrag: return kSprayFragHeaderBytes + payload_len;
  }
  return 0;
}

}  // namespace nmad::core
