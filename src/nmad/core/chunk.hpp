// Window elements: OutChunk (one entry of the optimization window) and
// BulkJob (a rendezvous body waiting for / flowing after its CTS).
#pragma once

#include <cstdint>
#include <vector>

#include "nmad/core/types.hpp"
#include "nmad/core/wire_format.hpp"
#include "util/buffer.hpp"
#include "util/intrusive_list.hpp"

namespace nmad::core {

class SendRequest;

// One schedulable unit in the optimization window. Data chunks alias the
// application buffer (zero-copy until the driver decides otherwise);
// control chunks (RTS/CTS) carry only header fields.
struct OutChunk {
  util::ListHook hook;

  ChunkKind kind = ChunkKind::kData;
  uint8_t flags = 0;
  Tag tag = 0;
  SeqNum seq = 0;
  uint32_t offset = 0;
  uint32_t total = 0;
  util::ConstBytes payload;  // data/frag only

  uint64_t cookie = 0;             // rts/cts
  uint32_t rdv_len = 0;            // rts: length of the rendezvous block
  std::vector<uint8_t> cts_rails;  // cts only

  // kAck only: `seq` carries the cumulative ack floor.
  std::vector<uint32_t> ack_sacks;     // selectively acked packet seqs
  std::vector<BulkAck> ack_bulk_acks;  // acked rendezvous slices

  // kCredit only: cumulative eager admission limits for the peer.
  uint64_t credit_bytes = 0;
  uint64_t credit_chunks = 0;
  // kSprayFrag only: fragment stream position and failover re-issue epoch
  // (see wire_format.hpp). `reissue_at` is stamped when a suspect-rail
  // failover re-creates the chunk, so issue_packet can measure the
  // enqueue-to-wire re-issue latency; -1 means "original issue".
  uint32_t frag_seq = 0;
  uint32_t epoch = 0;
  double reissue_at = -1.0;
  // Flow control: set once this chunk's payload has been charged against
  // the gate's credit, so a chunk returned to the window (rail death) is
  // never charged twice.
  bool credit_charged = false;

  Priority prio = Priority::kNormal;
  RailIndex pinned_rail = kAnyRail;
  SendRequest* owner = nullptr;  // null for control chunks

  [[nodiscard]] bool is_control() const {
    return kind == ChunkKind::kRts || kind == ChunkKind::kCts ||
           kind == ChunkKind::kAck || kind == ChunkKind::kCredit ||
           kind == ChunkKind::kHeartbeat;
  }

  // Bytes this chunk adds to a track-0 packet (header + inline payload).
  [[nodiscard]] size_t wire_bytes() const {
    return chunk_wire_bytes(kind, payload.size(), cts_rails.size(),
                            ack_sacks.size(), ack_bulk_acks.size());
  }
};

// A rendezvous body. Parked on the gate while waiting for the CTS, then
// moved to the ready list where strategies may stream it out through one
// rail or split it over several.
struct BulkJob {
  util::ListHook hook;

  uint64_t cookie = 0;
  GateId gate = 0;
  util::ConstBytes body;           // whole contiguous block
  size_t sent = 0;                 // bytes handed to drivers so far
  size_t acked = 0;                // bytes whose transmit completed
  std::vector<uint8_t> rails;      // rails with a sink posted (from CTS)
  // The unfiltered CTS grant: `rails` above shrinks when a rail dies so
  // refill never schedules onto it, but the receiver's sinks stay posted
  // through the blackout — revival restores the rail from this record.
  std::vector<uint8_t> granted_rails;
  RailIndex pinned_rail = kAnyRail;  // application hint, if any
  SendRequest* owner = nullptr;
  // Sender proposed (and receiver accepted) the per-packet spray path:
  // on CTS the body is fragmented into kSprayFrag window chunks instead
  // of flowing through the per-rail bulk pipeline.
  bool spray = false;

  [[nodiscard]] bool all_sent() const { return sent == body.size(); }
  [[nodiscard]] bool all_acked() const { return acked == body.size(); }
  [[nodiscard]] size_t remaining() const { return body.size() - sent; }

  [[nodiscard]] bool allows_rail(RailIndex rail) const {
    for (uint8_t r : rails) {
      if (r == rail) return true;
    }
    return false;
  }
};

}  // namespace nmad::core
