// Scheduling strategies (paper §3.2).
//
// "We propose a (dynamically ...) selectable optimization function instead
// of a fixed optimizing heuristic. The optimization function is to be
// selected among an extensible and programmable set of strategies."
//
// A strategy is consulted exactly when a NIC goes idle ("just-in-time"):
// it elects what that NIC transmits next — a packet synthesized from
// window chunks, a slice of a ready rendezvous body, or nothing.
// Strategies are registered by name so new ones can be added without
// touching the engine.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nmad/core/gate.hpp"
#include "nmad/core/packet_builder.hpp"

namespace nmad::core {

class ScheduleLayer;

// Nominal per-rail information strategies may consult ("information about
// the underlying network can be obtained in a generic manner", §4).
struct RailInfo {
  RailIndex index = 0;
  bool rdma = false;
  bool gather = false;
  size_t max_gather_segments = 1;
  size_t rdv_threshold = 32 * 1024;
  size_t max_packet_bytes = 32 * 1024;
  double latency_us = 0.0;
  double bandwidth_mbps = 0.0;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Elects chunks from `gate`'s window into `builder` for transmission on
  // `rail`. Returns the number of chunks consumed (0 = nothing electable).
  // The strategy must unlink consumed chunks from the window. Strategies
  // are an extension point of the scheduling layer, so the SPI hands them
  // that layer (credit admission, rail info) rather than the whole engine.
  virtual size_t pack(ScheduleLayer& sched, Gate& gate, const RailInfo& rail,
                      PacketBuilder& builder) = 0;

  // Offered a ready rendezvous body for `rail`; returns the job to stream
  // from and how many bytes to take (0 = decline). Splitting across rails
  // happens by answering several of these offers with partial lengths.
  struct BulkDecision {
    BulkJob* job = nullptr;
    size_t bytes = 0;
  };
  virtual BulkDecision next_bulk(ScheduleLayer& sched, Gate& gate,
                                 const RailInfo& rail) = 0;
};

// Registry -----------------------------------------------------------------

using StrategyFactory = std::function<std::unique_ptr<Strategy>()>;

// Registers a strategy under `name`; returns false if the name is taken.
bool register_strategy(const std::string& name, StrategyFactory factory);

// Instantiates a registered strategy; nullptr when unknown.
std::unique_ptr<Strategy> make_strategy(const std::string& name);

// Names of all registered strategies (sorted).
std::vector<std::string> strategy_names();

}  // namespace nmad::core
