#include "nmad/core/events.hpp"

#include <ostream>

#include "nmad/core/format_util.hpp"

namespace nmad::core {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kPacketBuilt:
      return "packet-built";
    case EventKind::kElected:
      return "elected";
    case EventKind::kWireTx:
      return "wire-tx";
    case EventKind::kWireRx:
      return "wire-rx";
    case EventKind::kAcked:
      return "acked";
    case EventKind::kRetransmit:
      return "retransmit";
    case EventKind::kHealthTransition:
      return "health-transition";
    case EventKind::kDrainMilestone:
      return "drain-milestone";
    case EventKind::kSprayReissued:
      return "spray-reissued";
    case EventKind::kSprayFragRx:
      return "spray-frag-rx";
    case EventKind::kReassembled:
      return "reassembled";
    case EventKind::kPeerDied:
      return "peer-died";
    case EventKind::kPeerRejoined:
      return "peer-rejoined";
  }
  return "?";
}

EventBus::EventBus(runtime::IRuntime& rt, CoreStats* stats,
                   size_t trace_capacity)
    : rt_(rt), stats_(stats), capacity_(trace_capacity) {
  ring_.reserve(capacity_);
}

void EventBus::publish(Event ev) {
  ev.t = rt_.now_us();
  ++published_;
  if (stats_ != nullptr) {
    switch (ev.kind) {
      case EventKind::kPacketBuilt:
        ++stats_->ev_packet_built;
        break;
      case EventKind::kElected:
        ++stats_->ev_elected;
        break;
      case EventKind::kWireTx:
        ++stats_->ev_wire_tx;
        break;
      case EventKind::kWireRx:
        ++stats_->ev_wire_rx;
        break;
      case EventKind::kAcked:
        ++stats_->ev_acked;
        break;
      case EventKind::kRetransmit:
        ++stats_->ev_retransmit;
        break;
      case EventKind::kHealthTransition:
        ++stats_->ev_health_transition;
        break;
      case EventKind::kDrainMilestone:
        ++stats_->ev_drain_milestone;
        break;
      case EventKind::kSprayReissued:
        ++stats_->ev_spray_reissued;
        break;
      case EventKind::kSprayFragRx:
        ++stats_->ev_spray_frag_rx;
        break;
      case EventKind::kReassembled:
        ++stats_->ev_reassembled;
        break;
      case EventKind::kPeerDied:
        ++stats_->ev_peer_died;
        break;
      case EventKind::kPeerRejoined:
        ++stats_->ev_peer_rejoined;
        break;
    }
  }
  if (capacity_ > 0) {
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
    } else {
      ring_[next_] = ev;
      next_ = (next_ + 1) % capacity_;
    }
  }
  for (const auto& fn : subscribers_[static_cast<size_t>(ev.kind)]) {
    fn(ev);
  }
}

void EventBus::subscribe(EventKind kind, Subscriber fn) {
  subscribers_[static_cast<size_t>(kind)].push_back(std::move(fn));
}

size_t EventBus::trace_size() const { return ring_.size(); }

std::vector<Event> EventBus::trace() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

void EventBus::dump_trace(std::ostream& out, size_t max_events) const {
  const auto events = trace();
  const size_t n = events.size() < max_events ? events.size() : max_events;
  dumpf(out, "trace (last %zu of %llu events):\n", n,
        static_cast<unsigned long long>(published_));
  for (size_t i = events.size() - n; i < events.size(); ++i) {
    const Event& ev = events[i];
    dumpf(out, "  [%10.2fus] %-17s gate=%u", ev.t,
          event_kind_name(ev.kind), static_cast<unsigned>(ev.gate));
    if (ev.rail != kAnyRail) {
      dumpf(out, " rail=%u", static_cast<unsigned>(ev.rail));
    }
    dumpf(out, " seq=%u a=%llu b=%llu\n", static_cast<unsigned>(ev.seq),
          static_cast<unsigned long long>(ev.a),
          static_cast<unsigned long long>(ev.b));
  }
}

}  // namespace nmad::core
