// printf-style helpers shared by the layers' debug_dump and invariant
// reporting: format into a stack buffer, then hand off to an ostream or a
// failure list. Keeps the dump code as dense as the old FILE* version
// while satisfying the std::ostream interface.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace nmad::core {

[[gnu::format(printf, 2, 3)]] inline void dumpf(std::ostream& out,
                                                const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out << buf;
}

[[gnu::format(printf, 2, 3)]] inline void addf(std::vector<std::string>& out,
                                               const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out.emplace_back(buf);
}

}  // namespace nmad::core
