#include "nmad/core/packet_builder.hpp"

#include "util/wire.hpp"

namespace nmad::core {

bool PacketBuilder::fits(const OutChunk& chunk) const {
  if (chunks_.empty()) return true;  // first chunk always ships
  if (wire_bytes_ + chunk.wire_bytes() > max_bytes_) return false;
  // A payload chunk needs a header segment and a payload segment; control
  // chunks extend the previous header segment only if adjacent, so count
  // conservatively.
  const size_t extra_segments = chunk.payload.empty() ? 1 : 2;
  if (max_segments_ != 0 &&
      segment_estimate_ + extra_segments > max_segments_) {
    return false;
  }
  return true;
}

void PacketBuilder::add(OutChunk* chunk) {
  NMAD_ASSERT(!finalized_);
  NMAD_ASSERT(chunk != nullptr);
  chunks_.push_back(chunk);
  wire_bytes_ += chunk->wire_bytes();
  segment_estimate_ += chunk->payload.empty() ? 1 : 2;
}

const util::SegmentVec& PacketBuilder::finalize() {
  NMAD_ASSERT(!finalized_);
  finalized_ = true;

  // First pass: encode every header into one stable buffer, recording the
  // extent of each chunk's header region.
  util::WireWriter w(headers_);
  uint8_t flags = checksum_ ? kPacketFlagChecksum : kPacketFlagNone;
  if (reliable_) flags |= kPacketFlagReliable;
  encode_packet_header(w, static_cast<uint16_t>(chunks_.size()), flags);
  // The sequence number sits between the packet header and the first
  // chunk, inside the checksummed region, so corruption of the seq
  // itself is also caught.
  if (reliable_) w.u32(packet_seq_);
  std::vector<std::pair<size_t, size_t>> extents;  // (offset, len)
  extents.reserve(chunks_.size());
  for (const OutChunk* chunk : chunks_) {
    const size_t begin = headers_.size();
    const auto len = static_cast<uint32_t>(chunk->payload.size());
    switch (chunk->kind) {
      case ChunkKind::kData:
        encode_data_header(w, chunk->flags, chunk->tag, chunk->seq, len);
        break;
      case ChunkKind::kFrag:
        encode_frag_header(w, chunk->flags, chunk->tag, chunk->seq, len,
                           chunk->offset, chunk->total);
        break;
      case ChunkKind::kRts:
        encode_rts(w, chunk->flags, chunk->tag, chunk->seq, chunk->rdv_len,
                   chunk->offset, chunk->total, chunk->cookie);
        break;
      case ChunkKind::kCts:
        encode_cts(w, chunk->flags, chunk->tag, chunk->seq, chunk->cookie,
                   chunk->cts_rails);
        break;
      case ChunkKind::kAck:
        encode_ack(w, chunk->seq, chunk->ack_sacks, chunk->ack_bulk_acks);
        break;
      case ChunkKind::kCredit:
        encode_credit(w, chunk->credit_bytes, chunk->credit_chunks);
        break;
      case ChunkKind::kHeartbeat:
        // The rail epoch rides the seq field, like the ack floor does;
        // the node incarnation reuses the epoch field and the gate's
        // unwind generation the tag field.
        encode_heartbeat(w, chunk->flags, chunk->seq, chunk->epoch,
                         chunk->tag);
        break;
      case ChunkKind::kSprayFrag:
        encode_spray_frag_header(w, chunk->flags, chunk->tag, chunk->seq,
                                 len, chunk->offset, chunk->total,
                                 chunk->frag_seq, chunk->epoch);
        break;
    }
    extents.emplace_back(begin, headers_.size() - begin);
  }

  // Second pass: build the gather list. The leading segment covers the
  // packet header plus the first chunk header; consecutive header regions
  // (control chunks with no payload) coalesce automatically because they
  // are adjacent in the buffer.
  size_t run_begin = 0;
  size_t run_end =
      kPacketHeaderBytes + (reliable_ ? kPacketSeqBytes : 0);
  for (size_t i = 0; i < chunks_.size(); ++i) {
    NMAD_ASSERT(extents[i].first == run_end);
    run_end += extents[i].second;
    if (!chunks_[i]->payload.empty()) {
      segments_.add(headers_.data() + run_begin, run_end - run_begin);
      segments_.add(chunks_[i]->payload);
      run_begin = run_end;
    }
  }
  if (run_end > run_begin) {
    segments_.add(headers_.data() + run_begin, run_end - run_begin);
  }

  if (checksum_) {
    // Hash the whole packet (header included) in stream order and append
    // the trailer as a last segment.
    util::Fnv32 hash;
    for (const util::Segment& seg : segments_) {
      hash.update(seg.view());
    }
    util::WireWriter trailer(trailer_);
    trailer.u32(hash.digest());
    segments_.add(trailer_.view());
  }
  return segments_;
}

}  // namespace nmad::core
