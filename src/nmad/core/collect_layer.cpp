#include "nmad/core/collect_layer.hpp"

#include <algorithm>
#include <cstring>

#include "nmad/core/format_util.hpp"
#include "util/assert.hpp"

namespace nmad::core {

CollectLayer::CollectLayer(EngineContext& ctx, ISchedule& sched,
                           ITransferFleet& fleet, IEngine& engine)
    : ctx_(ctx), sched_(sched), fleet_(fleet), engine_(engine) {}

size_t CollectLayer::max_eager_payload(const Gate& gate) const {
  NMAD_ASSERT(gate.max_packet > kPacketHeaderBytes + kFragHeaderBytes);
  return gate.max_packet - kPacketHeaderBytes - kFragHeaderBytes;
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

void CollectLayer::submit_eager_block(Gate& gate, SendRequest* req, Tag tag,
                                      SeqNum seq, size_t logical_offset,
                                      util::ConstBytes block, size_t total,
                                      bool simple, const SendHints& hints) {
  const size_t max_payload = max_eager_payload(gate);
  size_t offset = 0;
  do {
    const size_t n = std::min(block.size() - offset, max_payload);
    OutChunk* chunk = ctx_.chunk_pool.acquire();
    chunk->kind = simple ? ChunkKind::kData : ChunkKind::kFrag;
    chunk->flags = 0;
    chunk->tag = tag;
    chunk->seq = seq;
    chunk->offset = static_cast<uint32_t>(logical_offset + offset);
    chunk->total = static_cast<uint32_t>(total);
    chunk->payload = block.subspan(offset, n);
    chunk->prio = hints.prio;
    chunk->pinned_rail = hints.pinned_rail;
    chunk->owner = req;
    req->add_part();
    if (logical_offset + offset + n == total) chunk->flags |= kFlagLast;
    sched_.enqueue(gate, chunk);
    offset += n;
  } while (offset < block.size());
}

SendRequest* CollectLayer::isend(Gate& gate, Tag tag, const SourceLayout& src,
                                 const SendHints& hints) {
  const SeqNum seq = gate.collect.send_seq[tag]++;
  SendRequest* req = ctx_.send_pool.acquire(gate.id, tag, seq, src.total());
  ++ctx_.stats.sends_submitted;
  if (gate.failed) {
    // The peer is unreachable; fail fast instead of queueing forever.
    req->complete(gate.fail_status);
    return req;
  }
  ctx_.rt.cpu().charge(ctx_.config.submit_overhead_us);

  const size_t total = src.total();
  if (total == 0) {
    // Zero-length message: a bare data chunk carries the completion.
    OutChunk* chunk = ctx_.chunk_pool.acquire();
    chunk->kind = ChunkKind::kData;
    chunk->flags = kFlagLast;
    chunk->tag = tag;
    chunk->seq = seq;
    chunk->offset = 0;
    chunk->total = 0;
    chunk->payload = {};
    chunk->prio = hints.prio;
    chunk->pinned_rail = hints.pinned_rail;
    chunk->owner = req;
    req->add_part();
    sched_.enqueue(gate, chunk);
    sched_.kick();
    return req;
  }

  // "Simple" messages (single block, fits one eager chunk) use the compact
  // data header; everything else uses offset-addressed fragments.
  const bool want_rdv =
      gate.has_rdma && src.blocks().size() == 1 &&
      src.blocks()[0].memory.size() >= gate.rdv_threshold;
  const bool simple =
      src.blocks().size() == 1 && !want_rdv &&
      src.blocks()[0].memory.size() <= max_eager_payload(gate);

  for (const SourceLayout::Block& block : src.blocks()) {
    if (block.memory.empty()) continue;
    bool rdv = gate.has_rdma && block.memory.size() >= gate.rdv_threshold;
    if (!rdv && gate.has_rdma &&
        sched_.credit_wants_rdv(gate, block.memory.size())) {
      // Graceful degradation: the eager path would exhaust the peer's
      // credit, so negotiate the block instead — the RTS is always
      // admissible and the body bypasses the receiver's eager budget.
      rdv = true;
      ++ctx_.stats.credit_rdv_degrades;
    }
    if (rdv) {
      sched_.submit_rdv(gate, req, tag, seq, block.logical_offset,
                        block.memory, total, hints);
    } else {
      submit_eager_block(gate, req, tag, seq, block.logical_offset,
                         block.memory, total, simple, hints);
    }
  }
  sched_.kick();
  return req;
}

RecvRequest* CollectLayer::irecv(Gate& gate, Tag tag, DestLayout dest) {
  const SeqNum seq = gate.collect.recv_seq[tag]++;
  RecvRequest* req = ctx_.recv_pool.acquire(gate.id, tag, seq,
                                            std::move(dest));
  ++ctx_.stats.recvs_submitted;
  if (gate.failed) {
    req->complete(gate.fail_status);
    return req;
  }
  ctx_.rt.cpu().charge(ctx_.config.submit_overhead_us);

  const MsgKey key{tag, seq};
  gate.collect.active_recv[key] = req;

  // Replay anything that arrived before this receive was posted.
  auto it = gate.collect.unexpected.find(key);
  if (it != gate.collect.unexpected.end()) {
    UnexpectedMsg msg = std::move(it->second);
    gate.collect.unexpected.erase(it);
    if (msg.peer_cancelled) {
      // The sender withdrew this message before we matched it.
      gate.collect.active_recv.erase(key);
      req->complete(util::cancelled("sender withdrew the message"));
      return req;
    }
    size_t drained_bytes = 0;
    size_t drained_chunks = 0;
    for (const StoredFrag& frag : msg.frags) {
      if (!frag.data.view().empty()) {
        drained_bytes += frag.data.view().size();
        ++drained_chunks;
      }
      deliver_eager(gate, req, frag.offset, frag.total, frag.data.view());
    }
    if (drained_bytes > 0) {
      sched_.rx_store_discharge(gate, drained_bytes, drained_chunks);
    }
    for (const StoredRts& rts : msg.rts) {
      if ((rts.flags & kFlagSpray) != 0) {
        start_spray_recv(gate, req, rts.len, rts.offset, rts.total,
                         rts.cookie);
      } else {
        start_rdv_recv(gate, req, rts.len, rts.offset, rts.total, rts.cookie);
      }
    }
    sched_.kick();  // replay may have queued CTS chunks
  }
  return req;
}

PeekInfo CollectLayer::peek_unexpected(Gate& gate, Tag tag) {
  // The next irecv on this tag will be assigned the current counter value.
  SeqNum next_seq = 0;
  if (auto it = gate.collect.recv_seq.find(tag);
      it != gate.collect.recv_seq.end()) {
    next_seq = it->second;
  }
  auto it = gate.collect.unexpected.find(MsgKey{tag, next_seq});
  if (it == gate.collect.unexpected.end()) return {};
  PeekInfo result;
  result.matched = true;
  for (const StoredFrag& frag : it->second.frags) {
    result.total_known = true;
    result.total_bytes = frag.total;
  }
  for (const StoredRts& rts : it->second.rts) {
    result.total_known = true;
    result.total_bytes = rts.total;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void CollectLayer::on_payload(Gate& gate, const WireChunk& chunk) {
  if (flow_control() && !chunk.payload.empty()) {
    // Heard-side credit accounting, the mirror of the sender's charge.
    // Runs before any tombstone check so the two ends stay in step even
    // for payload that is about to be dropped.
    sched_.note_eager_heard(gate, chunk.payload.size());
  }
  const MsgKey key{chunk.tag, chunk.seq};
  if (gate.collect.cancelled_recv.count(key) != 0) {
    // The receive was cancelled; its data has nowhere to go.
    ++ctx_.stats.cancelled_payload_dropped;
    return;
  }
  auto it = gate.collect.active_recv.find(key);
  if (it == gate.collect.active_recv.end()) {
    auto ue = gate.collect.unexpected.find(key);
    if (ue != gate.collect.unexpected.end() && ue->second.peer_cancelled) {
      // The sender withdrew the message; this is a straggler.
      ++ctx_.stats.cancelled_payload_dropped;
      return;
    }
    // Unexpected: copy the payload aside (real host work) until a
    // matching receive is posted.
    ++ctx_.stats.unexpected_chunks;
    ctx_.rt.cpu().charge_memcpy(chunk.payload.size());
    StoredFrag frag;
    frag.kind = chunk.kind;
    frag.flags = chunk.flags;
    frag.offset = chunk.offset;
    frag.total = chunk.total;
    frag.data.append(chunk.payload);
    gate.collect.unexpected[key].frags.push_back(std::move(frag));
    if (!chunk.payload.empty()) {
      sched_.rx_store_charge(gate, chunk.payload.size(), 1);
    }
    return;
  }
  deliver_eager(gate, it->second, chunk.offset, chunk.total, chunk.payload);
}

void CollectLayer::deliver_eager(Gate& gate, RecvRequest* req,
                                 uint32_t offset, uint32_t total,
                                 util::ConstBytes payload) {
  if (!req->set_total(total)) {
    finish_recv_if_done(gate, req);
    return;
  }
  if (payload.empty()) {
    recv_add_bytes(gate, req, 0);
    return;
  }
  // Eager data is copied from the NIC buffer into the destination layout:
  // the one unavoidable copy of eager protocols. Content moves now (the
  // source view dies with the packet); completion is accounted when the
  // modelled memcpy finishes. The deferred event re-looks the receive up
  // by key — it may be cancelled (and even released) while the modelled
  // memcpy is in flight.
  req->layout().scatter(offset, payload);
  const double done_at = ctx_.rt.cpu().charge_memcpy(payload.size());
  const size_t n = payload.size();
  const GateId gid = gate.id;
  const MsgKey key{req->tag(), req->seq()};
  ctx_.rt.schedule_at(done_at, [this, gid, key, n]() {
    Gate& g = gate_ref(gid);
    auto it = g.collect.active_recv.find(key);
    if (it == g.collect.active_recv.end()) return;
    recv_add_bytes(g, it->second, n);
  });
}

void CollectLayer::on_rts(Gate& gate, const WireChunk& chunk) {
  const MsgKey key{chunk.tag, chunk.seq};
  if ((chunk.flags & kFlagCancel) != 0) {
    // The sender withdrew the whole message (tag, seq).
    auto ar = gate.collect.active_recv.find(key);
    if (ar != gate.collect.active_recv.end()) {
      RecvRequest* req = ar->second;
      for (auto rv = gate.collect.rdv_recv.begin();
           rv != gate.collect.rdv_recv.end();) {
        if (rv->second.request != req) {
          ++rv;
          continue;
        }
        for (uint8_t r : rv->second.rails) {
          fleet_.transfer_rail(r).cancel_bulk_recv(rv->first);
        }
        rv = gate.collect.rdv_recv.erase(rv);
      }
      // An armed spray reassembly dies with its request; fragments still
      // on the wire fall to the tombstone below and are dropped.
      gate.collect.spray_recv.erase(key);
      gate.collect.active_recv.erase(ar);
      // The payload may still be behind the cancel notice (another rail,
      // or a retransmission): tombstone the key so a late arrival is
      // dropped instead of parked forever in the unexpected store.
      gate.collect.cancelled_recv.emplace(key, reap_tombstones(gate));
      req->complete(util::cancelled("sender withdrew the message"));
      return;
    }
    if (gate.collect.cancelled_recv.count(key) != 0) {
      return;  // cancelled here too
    }
    // Not matched yet: drop whatever is parked and leave a tombstone so
    // the future irecv learns of the withdrawal.
    UnexpectedMsg& msg = gate.collect.unexpected[key];
    size_t bytes = 0;
    size_t chunks = 0;
    for (const StoredFrag& frag : msg.frags) {
      if (!frag.data.view().empty()) {
        bytes += frag.data.view().size();
        ++chunks;
      }
    }
    if (bytes > 0) sched_.rx_store_discharge(gate, bytes, chunks);
    msg.frags.clear();
    msg.rts.clear();
    msg.peer_cancelled = true;
    return;
  }
  if (gate.collect.cancelled_recv.count(key) != 0) {
    // The receive was cancelled: refuse the grant so the sender unwinds.
    send_cancel_cts(gate, chunk.tag, chunk.seq, chunk.cookie);
    sched_.kick();
    return;
  }
  auto it = gate.collect.active_recv.find(key);
  if (it == gate.collect.active_recv.end()) {
    auto ue = gate.collect.unexpected.find(key);
    if (ue != gate.collect.unexpected.end() && ue->second.peer_cancelled) {
      // The sender withdrew the message and this RTS straggled in behind
      // the cancel notice (another rail, or a retransmission): drop it
      // rather than park it in the tombstoned entry.
      ++ctx_.stats.cancelled_payload_dropped;
      return;
    }
    ++ctx_.stats.unexpected_chunks;
    StoredRts rts;
    rts.flags = chunk.flags;
    rts.len = chunk.len;
    rts.offset = chunk.offset;
    rts.total = chunk.total;
    rts.cookie = chunk.cookie;
    gate.collect.unexpected[key].rts.push_back(rts);
    return;
  }
  if ((chunk.flags & kFlagSpray) != 0) {
    start_spray_recv(gate, it->second, chunk.len, chunk.offset, chunk.total,
                     chunk.cookie);
    return;
  }
  start_rdv_recv(gate, it->second, chunk.len, chunk.offset, chunk.total,
                 chunk.cookie);
}

void CollectLayer::start_rdv_recv(Gate& gate, RecvRequest* req, uint32_t len,
                                  uint32_t offset, uint32_t total,
                                  uint64_t cookie) {
  if (gate.failed) return;  // unexpected-replay after a gate failure
  if (!req->set_total(total)) {
    // Truncation: no CTS is ever sent; the request carries the error.
    finish_recv_if_done(gate, req);
    return;
  }

  RdvRecv rec;
  rec.request = req;
  rec.len = len;
  rec.offset = offset;
  util::MutableBytes region = req->layout().contiguous_region(offset, len);
  if (region.empty() && len > 0) {
    // Destination is scattered: receive through a bounce buffer, scatter
    // on completion (costs a modelled memcpy — zero-copy only when the
    // block lands contiguously, exactly the Figure 4 distinction).
    rec.bounce.resize(len);
    region = rec.bounce.view();
  }
  const GateId gate_id = gate.id;
  rec.sink = std::make_unique<drivers::BulkSink>(
      cookie, region, len, [this, gate_id, cookie]() {
        // Defer: the sink is still on the delivery stack right now.
        ctx_.rt.defer([this, gate_id, cookie]() {
          on_bulk_recv_complete(gate_id, cookie);
        });
      });
  if (reliable()) {
    // Every deposited slice is acknowledged back to the sender, which
    // holds its copy until then.
    rec.sink->set_on_deposit([this, gate_id, cookie](size_t dep_offset,
                                                     size_t dep_len) {
      Gate& g2 = gate_ref(gate_id);
      if (g2.failed) return;
      BulkAck ack;
      ack.cookie = cookie;
      ack.offset = static_cast<uint32_t>(dep_offset);
      ack.len = static_cast<uint32_t>(dep_len);
      sched_.queue_bulk_ack(g2, ack);
    });
  }

  std::vector<uint8_t> posted_rails;
  for (RailIndex r : gate.rails) {
    ITransferRail& tr = fleet_.transfer_rail(r);
    if (!tr.info().rdma || !tr.alive()) continue;
    const util::Status st = tr.post_bulk_recv(rec.sink.get());
    NMAD_ASSERT_MSG(st.is_ok(), "bulk post failed on RDMA rail");
    posted_rails.push_back(static_cast<uint8_t>(r));
  }
  if (posted_rails.empty()) {
    NMAD_ASSERT_MSG(reliable(), "RTS received but no RDMA rail available");
    engine_.fail_gate(gate, util::closed("no alive RDMA rail for rendezvous"));
    return;
  }
  rec.rails = posted_rails;
  gate.collect.rdv_recv.emplace(cookie, std::move(rec));

  // Grant: the CTS is an ordinary control chunk — it rides the window and
  // may be aggregated with outgoing data (key to the §5.3 strategy).
  OutChunk* cts = ctx_.chunk_pool.acquire();
  cts->kind = ChunkKind::kCts;
  cts->flags = 0;
  cts->tag = req->tag();
  cts->seq = req->seq();
  cts->cookie = cookie;
  cts->cts_rails = std::move(posted_rails);
  cts->prio = Priority::kHigh;
  cts->owner = nullptr;
  sched_.enqueue(gate, cts);
  sched_.kick();
}

void CollectLayer::start_spray_recv(Gate& gate, RecvRequest* req,
                                    uint32_t len, uint32_t offset,
                                    uint32_t total, uint64_t cookie) {
  if (gate.failed) return;  // unexpected-replay after a gate failure
  if (!req->set_total(total)) {
    // Truncation: no CTS is ever sent; the request carries the error.
    finish_recv_if_done(gate, req);
    return;
  }
  const MsgKey key{req->tag(), req->seq()};

  if (len > 0) {
    SprayRecv rec;
    rec.request = req;
    rec.len = len;
    rec.offset = offset;
    rec.total = total;
    rec.cookie = cookie;
    rec.region = req->layout().contiguous_region(offset, len);
    if (rec.region.empty()) {
      // Destination is scattered: reassemble in a bounce buffer, scatter
      // once on completion (same zero-copy boundary as rendezvous).
      rec.bounce.resize(len);
      rec.region = rec.bounce.view();
    }
    gate.collect.spray_recv.emplace(key, std::move(rec));
  } else {
    // Degenerate empty body: nothing will ever arrive, complete now. The
    // CTS below still unparks the sender's job.
    gate.collect.spray_done.emplace(key, reap_tombstones(gate));
    recv_add_bytes(gate, req, 0);
  }

  // Accept the spray proposal: a kFlagSpray CTS with no granted rails —
  // fragments ride ordinary track-0 packets on whatever rails the
  // sender's strategy elects, so no sinks are posted.
  OutChunk* cts = ctx_.chunk_pool.acquire();
  cts->kind = ChunkKind::kCts;
  cts->flags = kFlagSpray;
  cts->tag = key.first;
  cts->seq = key.second;
  cts->cookie = cookie;
  cts->cts_rails.clear();
  cts->prio = Priority::kHigh;
  cts->owner = nullptr;
  sched_.enqueue(gate, cts);
  sched_.kick();
}

void CollectLayer::on_spray_frag(Gate& gate, RailIndex rail,
                                 const WireChunk& chunk) {
  // Unlike on_payload there is no note_eager_heard here: sprayed bodies
  // were granted through the rendezvous handshake and never charge the
  // eager credit window on the sender, so hearing them must not count
  // either (the delivery oracle audits the two gauges for equality).
  const MsgKey key{chunk.tag, chunk.seq};
  const auto publish_rx = [&](uint64_t outcome) {
    ctx_.bus.publish(
        {.kind = EventKind::kSprayFragRx,
         .gate = gate.id,
         .rail = rail,
         .seq = chunk.seq,
         .a = (static_cast<uint64_t>(chunk.tag) << 40) | chunk.offset,
         .b = (outcome << 32) | chunk.len});
  };
  if (gate.collect.cancelled_recv.count(key) != 0) {
    ++ctx_.stats.cancelled_payload_dropped;
    return;
  }
  auto it = gate.collect.spray_recv.find(key);
  if (it == gate.collect.spray_recv.end()) {
    // After completion (or never armed at all): a retransmitted original,
    // or a fenced twin straggling in behind the reassembled message.
    ++ctx_.stats.spray_frags_late;
    publish_rx(3);
    return;
  }
  SprayRecv& rec = it->second;

  // Epoch fence, per fragment sequence: once a re-issued (higher-epoch)
  // copy of this fragment has been seen, the suspect-rail twin is stale
  // even though its bytes are identical — dropping it keeps the failover
  // path honest in the accounting the oracle audits. Fencing is NOT
  // per-message: untouched epoch-0 fragments of a partially re-issued
  // spray are still the only copy of their bytes.
  auto [eit, fresh_seq] = rec.frag_epoch.try_emplace(chunk.frag_seq,
                                                     chunk.epoch);
  if (!fresh_seq) {
    if (chunk.epoch < eit->second) {
      ++ctx_.stats.spray_frags_fenced;
      publish_rx(2);
      return;
    }
    eit->second = chunk.epoch;
  }

  // Coverage: fragment extents are fixed per frag_seq, so any overlap
  // with an applied interval means an identical twin (original vs
  // re-issue, or a packet-level retransmit) — apply exactly once.
  NMAD_ASSERT_MSG(static_cast<size_t>(chunk.offset) + chunk.payload.size() <=
                      rec.len,
                  "spray fragment outside its granted block");
  const size_t lo = chunk.offset;
  const size_t hi = lo + chunk.payload.size();
  auto next = rec.covered.upper_bound(lo);
  bool overlap = next != rec.covered.end() && next->first < hi;
  if (!overlap && next != rec.covered.begin()) {
    overlap = std::prev(next)->second > lo;
  }
  if (overlap) {
    ++ctx_.stats.spray_frag_dups;
    publish_rx(1);
    return;
  }

  std::memcpy(rec.region.data() + lo, chunk.payload.data(), hi - lo);
  ctx_.rt.cpu().charge_memcpy(hi - lo);
  auto ins = rec.covered.emplace(lo, hi).first;
  if (ins != rec.covered.begin()) {
    auto prev = std::prev(ins);
    if (prev->second == lo) {
      prev->second = hi;
      rec.covered.erase(ins);
      ins = prev;
    }
  }
  if (auto after = std::next(ins);
      after != rec.covered.end() && ins->second == after->first) {
    ins->second = after->second;
    rec.covered.erase(after);
  }
  rec.received += hi - lo;
  ++ctx_.stats.spray_frags_rx;
  publish_rx(0);

  if (rec.received < rec.len) return;

  // Reassembly complete: every byte applied exactly once.
  SprayRecv done = std::move(rec);
  gate.collect.spray_recv.erase(it);
  gate.collect.spray_done.emplace(key, reap_tombstones(gate));
  ++ctx_.stats.spray_reassembled;
  ctx_.bus.publish({.kind = EventKind::kReassembled,
                    .gate = gate.id,
                    .rail = rail,
                    .seq = key.second,
                    .a = static_cast<uint64_t>(key.first) << 40,
                    .b = done.len});
  RecvRequest* req = done.request;
  if (!done.bounce.empty()) {
    // Bounce path: scatter into the real destination at memcpy cost; the
    // deferred completion re-looks the receive up by key (see
    // deliver_eager for why).
    req->layout().scatter(done.offset, done.bounce.view());
    const double done_at = ctx_.rt.cpu().charge_memcpy(done.len);
    const GateId gid = gate.id;
    const size_t len = done.len;
    ctx_.rt.schedule_at(done_at, [this, gid, key, len]() {
      Gate& g2 = gate_ref(gid);
      auto ar = g2.collect.active_recv.find(key);
      if (ar == g2.collect.active_recv.end()) return;
      recv_add_bytes(g2, ar->second, len);
    });
  } else {
    recv_add_bytes(gate, req, done.len);
  }
}

void CollectLayer::on_bulk_recv_complete(GateId gate_id, uint64_t cookie) {
  Gate& g = gate_ref(gate_id);
  auto it = g.collect.rdv_recv.find(cookie);
  if (it == g.collect.rdv_recv.end()) {
    // The gate failed between the sink completing and this deferred
    // event; the sink was already cancelled.
    NMAD_ASSERT(g.failed);
    return;
  }
  RdvRecv rec = std::move(it->second);
  g.collect.rdv_recv.erase(it);
  // Late duplicate slices must be re-acked even though the sink is gone.
  if (reliable()) sched_.note_bulk_completed(g, cookie);

  for (uint8_t r : rec.rails) {
    fleet_.transfer_rail(r).cancel_bulk_recv(cookie);
  }

  RecvRequest* req = rec.request;
  const size_t len = rec.len;
  if (!rec.bounce.empty()) {
    // Bounce path: scatter into the real destination at memcpy cost. The
    // deferred completion re-looks the receive up by key (see
    // deliver_eager for why).
    req->layout().scatter(rec.offset, rec.bounce.view());
    const double done_at = ctx_.rt.cpu().charge_memcpy(len);
    const MsgKey key{req->tag(), req->seq()};
    ctx_.rt.schedule_at(done_at, [this, gate_id, key, len]() {
      Gate& g2 = gate_ref(gate_id);
      auto ar = g2.collect.active_recv.find(key);
      if (ar == g2.collect.active_recv.end()) return;
      recv_add_bytes(g2, ar->second, len);
    });
  } else {
    recv_add_bytes(g, req, len);
  }
}

void CollectLayer::recv_add_bytes(Gate& gate, RecvRequest* req, size_t n) {
  req->add_received(n);
  finish_recv_if_done(gate, req);
}

void CollectLayer::finish_recv_if_done(Gate& gate, RecvRequest* req) {
  if (!req->done()) return;
  gate.collect.active_recv.erase(MsgKey{req->tag(), req->seq()});
}

// ---------------------------------------------------------------------------
// Cancellation (receive side)
// ---------------------------------------------------------------------------

bool CollectLayer::cancel_recv(Gate& gate, RecvRequest* req,
                               util::Status status) {
  if (gate.failed) return false;
  const MsgKey key{req->tag(), req->seq()};
  // A sprayed receive cannot cancel once granted: fragments may land at
  // any moment on any rail and there is no per-cookie sink to revoke.
  // Refusal is part of the cancel contract — the caller retries or the
  // message completes first.
  if (gate.collect.spray_recv.count(key) != 0) return false;
  std::vector<uint64_t> cookies;
  for (auto& [cookie, rec] : gate.collect.rdv_recv) {
    if (rec.request == req) cookies.push_back(cookie);
  }
  if (!reliable()) {
    // Once the CTS left the window the sender may stream at any moment;
    // without the reliability layer a torn-down sink would strand those
    // bytes with nowhere to go. Only cancel while the grant is still ours.
    for (uint64_t cookie : cookies) {
      if (!sched_.cts_in_window(gate, cookie)) return false;
    }
  }
  gate.collect.active_recv.erase(key);
  // Late payload is dropped, RTS refused.
  gate.collect.cancelled_recv.emplace(key, reap_tombstones(gate));
  for (uint64_t cookie : cookies) {
    RdvRecv& rec = gate.collect.rdv_recv.at(cookie);
    for (uint8_t r : rec.rails) {
      fleet_.transfer_rail(r).cancel_bulk_recv(cookie);
    }
    gate.collect.rdv_recv.erase(cookie);
    sched_.remove_window_cts(gate, cookie);
    // The sender may already hold the grant: revoke it so the job (and
    // its retransmits) unwind instead of streaming into the void.
    send_cancel_cts(gate, req->tag(), req->seq(), cookie);
  }
  sched_.kick();
  ++ctx_.stats.recvs_cancelled;
  req->complete(std::move(status));
  engine_.cancel_deadline(req);
  return true;
}

void CollectLayer::send_cancel_cts(Gate& gate, Tag tag, SeqNum seq,
                                   uint64_t cookie) {
  OutChunk* c = ctx_.chunk_pool.acquire();
  c->kind = ChunkKind::kCts;
  c->flags = kFlagCancel;
  c->tag = tag;
  c->seq = seq;
  c->cookie = cookie;
  c->prio = Priority::kHigh;
  c->owner = nullptr;
  sched_.enqueue(gate, c);
}

uint32_t CollectLayer::reap_tombstones(Gate& gate) {
  const uint32_t floor = sched_.recv_watermark(gate);
  if (reliable()) {
    // Anything referencing a key tombstoned a full reliability window
    // below the floor arrives as a duplicate and is suppressed before the
    // tombstone would ever be consulted — the entry is dead weight.
    const auto win = static_cast<uint32_t>(ctx_.config.reliability_window);
    uint64_t reaped = 0;
    const auto reap = [&](auto& tombs) {
      for (auto it = tombs.begin(); it != tombs.end();) {
        if (floor - it->second >= win && it->second <= floor) {
          it = tombs.erase(it);
          ++reaped;
        } else {
          ++it;
        }
      }
    };
    reap(gate.collect.spray_done);
    reap(gate.collect.cancelled_recv);
    ctx_.stats.tombstones_reaped += reaped;
  }
  return floor;
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

void CollectLayer::teardown(Gate& gate, const util::Status& status) {
  // Posted receives learn the error; posted sinks go away.
  for (auto& [cookie, rec] : gate.collect.rdv_recv) {
    for (uint8_t r : rec.rails) {
      fleet_.transfer_rail(r).cancel_bulk_recv(cookie);
    }
  }
  gate.collect.rdv_recv.clear();
  // Spray reassemblies complete (with the error) through active_recv —
  // every in-flight SprayRecv request is matched there by construction.
  gate.collect.spray_recv.clear();
  gate.collect.spray_done.clear();
  for (auto& [key, req] : gate.collect.active_recv) req->complete(status);
  gate.collect.active_recv.clear();
  // Release the rx budget held by this peer's parked fragments. `failed`
  // is already set, so the discharge does not try to re-advertise credit.
  const auto [stored_bytes, stored_chunks] = sched_.store_gauge(gate);
  if (stored_bytes > 0 || stored_chunks > 0) {
    sched_.rx_store_discharge(gate, stored_bytes, stored_chunks);
  }
  gate.collect.unexpected.clear();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

CollectLayer::GateCounts CollectLayer::gate_counts(const Gate& gate) const {
  return {gate.collect.active_recv.size(), gate.collect.unexpected.size(),
          gate.collect.rdv_recv.size(), gate.collect.spray_recv.size()};
}

std::pair<size_t, size_t> CollectLayer::count_store(const Gate& gate) const {
  size_t bytes = 0;
  size_t chunks = 0;
  for (const auto& [key, msg] : gate.collect.unexpected) {
    for (const StoredFrag& frag : msg.frags) {
      bytes += frag.data.view().size();
      if (!frag.data.view().empty()) ++chunks;
    }
  }
  return {bytes, chunks};
}

void CollectLayer::check_gate(const Gate& gate,
                              std::vector<std::string>& out) const {
  using ULL = unsigned long long;
  const GateCollect& c = gate.collect;

  // --- unexpected store ------------------------------------------------
  for (const auto& [key, msg] : c.unexpected) {
    if (msg.peer_cancelled && (!msg.frags.empty() || !msg.rts.empty())) {
      addf(out,
           "gate %u: tombstoned unexpected message (tag %llu seq %u) "
           "still holds data",
           gate.id, static_cast<ULL>(key.first), key.second);
    }
    if (c.active_recv.count(key) != 0) {
      addf(out,
           "gate %u: message (tag %llu seq %u) both matched and parked "
           "as unexpected",
           gate.id, static_cast<ULL>(key.first), key.second);
    }
    if (c.cancelled_recv.count(key) != 0) {
      addf(out,
           "gate %u: message (tag %llu seq %u) both cancelled and "
           "parked as unexpected",
           gate.id, static_cast<ULL>(key.first), key.second);
    }
  }

  // --- receive matching ------------------------------------------------
  for (const auto& [key, req] : c.active_recv) {
    if (req == nullptr) {
      addf(out, "gate %u: null receive matched (tag %llu seq %u)", gate.id,
           static_cast<ULL>(key.first), key.second);
      continue;
    }
    if (req->done()) {
      addf(out,
           "gate %u: completed receive still matched (tag %llu seq %u)",
           gate.id, static_cast<ULL>(key.first), key.second);
    }
    if (req->tag() != key.first || req->seq() != key.second) {
      addf(out,
           "gate %u: active_recv key (tag %llu seq %u) does not match "
           "its request (tag %llu seq %u)",
           gate.id, static_cast<ULL>(key.first), key.second,
           static_cast<ULL>(req->tag()), req->seq());
    }
    if (c.cancelled_recv.count(key) != 0) {
      addf(out,
           "gate %u: receive (tag %llu seq %u) both active and "
           "cancelled",
           gate.id, static_cast<ULL>(key.first), key.second);
    }
  }
  for (const auto& [cookie, rec] : c.rdv_recv) {
    if (rec.request == nullptr || rec.request->done()) {
      addf(out,
           "gate %u: rendezvous receive (cookie %llu) without a live "
           "request",
           gate.id, static_cast<ULL>(cookie));
      continue;
    }
    const MsgKey key{rec.request->tag(), rec.request->seq()};
    auto it = c.active_recv.find(key);
    if (it == c.active_recv.end() || it->second != rec.request) {
      addf(out,
           "gate %u: rendezvous receive (cookie %llu) not in "
           "active_recv",
           gate.id, static_cast<ULL>(cookie));
    }
  }

  // --- spray reassembly ------------------------------------------------
  for (const auto& [key, rec] : c.spray_recv) {
    if (rec.request == nullptr || rec.request->done()) {
      addf(out,
           "gate %u: spray reassembly (tag %llu seq %u) without a live "
           "request",
           gate.id, static_cast<ULL>(key.first), key.second);
      continue;
    }
    auto it = c.active_recv.find(key);
    if (it == c.active_recv.end() || it->second != rec.request) {
      addf(out,
           "gate %u: spray reassembly (tag %llu seq %u) not in "
           "active_recv",
           gate.id, static_cast<ULL>(key.first), key.second);
    }
    if (rec.received >= rec.len) {
      addf(out,
           "gate %u: spray reassembly (tag %llu seq %u) applied %zu of "
           "%u bytes but was never completed",
           gate.id, static_cast<ULL>(key.first), key.second, rec.received,
           rec.len);
    }
    if (c.spray_done.count(key) != 0) {
      addf(out,
           "gate %u: spray reassembly (tag %llu seq %u) both in flight "
           "and completed",
           gate.id, static_cast<ULL>(key.first), key.second);
    }
    size_t covered = 0;
    size_t prev_end = 0;
    bool ordered = true;
    for (const auto& [lo, hi] : rec.covered) {
      if (lo < prev_end || hi <= lo || hi > rec.len) ordered = false;
      covered += hi - lo;
      prev_end = hi;
    }
    if (!ordered || covered != rec.received) {
      addf(out,
           "gate %u: spray coverage map of (tag %llu seq %u) is "
           "inconsistent (%zu covered vs %zu received)",
           gate.id, static_cast<ULL>(key.first), key.second, covered,
           rec.received);
    }
  }
}

}  // namespace nmad::core
