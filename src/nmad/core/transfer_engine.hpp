// TransferEngine: the transfer layer — one engine per rail (paper §3's
// per-NIC "transfer layer", with OptiNIC-style per-NIC resilience state).
//
// Each engine owns its driver, the rail's capability info, and the rail's
// entire health lifecycle: liveness timestamps, the heartbeat/probe
// monitor, the revival epoch, and the alive/suspect/dead/probation state
// machine. It pumps tx (send_packet / send_bulk wrappers that publish
// wire-tx events) and rx (the installed sink, refreshed for liveness on
// every arrival). Health transitions are published on the event bus —
// the scheduling layer subscribes (via the façade) to re-home in-flight
// traffic; this engine never touches another layer's state.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nmad/core/layer_ifaces.hpp"
#include "nmad/drivers/driver.hpp"

namespace nmad::core {

class TransferEngine final : public ITransferRail {
 public:
  TransferEngine(EngineContext& ctx, RailIndex index,
                 std::unique_ptr<drivers::Driver> driver, RailInfo info);

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  // Wires the scheduler's issue path for standalone heartbeat packets;
  // must be called before any monitor starts.
  void bind(IPacketIssuer* issuer) { issuer_ = issuer; }

  // Installs the engine's rx sink (the façade's packet hub). The wrapper
  // refreshes rail liveness before forwarding.
  using RxSink = std::function<void(RailIndex, drivers::RxPacket&&)>;
  void install_rx(RxSink sink);
  void install_orphan(drivers::Driver::BulkOrphanHandler sink);

  // ITransferRail ----------------------------------------------------------
  [[nodiscard]] const RailInfo& info() const override { return info_; }
  [[nodiscard]] bool alive() const override { return alive_; }
  [[nodiscard]] bool suspect() const override {
    return health_ == RailHealth::kSuspect;
  }
  [[nodiscard]] bool degraded() const override {
    return health_ == RailHealth::kDegraded;
  }
  [[nodiscard]] bool tx_idle() const override { return driver_->tx_idle(); }
  [[nodiscard]] double score_loss() const override { return loss_ewma_; }
  [[nodiscard]] double score_latency_p99() const override {
    return delivery_latency_.p99();
  }
  [[nodiscard]] double score_throughput() const override { return tp_est_; }
  util::Status send_packet(const Gate& gate, const util::SegmentVec& segments,
                           drivers::Driver::CompletionFn on_tx_done) override;
  util::Status send_bulk(const Gate& gate, uint64_t cookie, size_t offset,
                         const util::SegmentVec& segments,
                         drivers::Driver::CompletionFn on_tx_done) override;
  util::Status post_bulk_recv(drivers::BulkSink* sink) override;
  void cancel_bulk_recv(uint64_t cookie) override;
  void note_delivery(double latency_us = -1.0) override;
  void note_timeout() override;
  void maybe_inject_heartbeat(Gate& gate, PacketBuilder& builder) override;

  // Health lifecycle -------------------------------------------------------
  [[nodiscard]] RailHealth health() const { return health_; }
  [[nodiscard]] uint32_t epoch() const { return epoch_; }
  // Declares the rail dead: bumps the epoch (fencing its earlier life),
  // publishes the health transition — the scheduling layer re-homes
  // in-flight traffic from its subscription.
  void kill();
  // Forces the dead→alive transition the probation handshake normally
  // performs.
  void revive();
  void handle_heartbeat(Gate& gate, const WireChunk& chunk);
  void start_monitor(double now);
  void stop_monitor();

  void poll() { driver_->poll(); }
  void shutdown() { driver_->shutdown(); }
  [[nodiscard]] const std::string& name() const {
    return driver_->caps().name;
  }

  // Appends this rail's health fields to a dump line (no-op unless the
  // health lifecycle is on).
  void dump_health(std::ostream& out) const;
  // Own-state invariants: alive/health agreement, epoch/probation sanity.
  void check(size_t display_index, std::vector<std::string>& out) const;

  [[nodiscard]] const util::QuantileDigest& latency_digest() const {
    return delivery_latency_;
  }
  [[nodiscard]] uint32_t degraded_entries() const {
    return degraded_entries_;
  }

 private:
  [[nodiscard]] bool health_on() const { return ctx_.config.rail_health; }
  [[nodiscard]] bool adaptive_on() const { return ctx_.config.adaptive; }
  void set_health(RailHealth next);
  void refresh_liveness();
  void on_health_tick();
  // Re-evaluates the gray-failure criterion (loss/latency vs. the
  // hysteresis bands) and moves the rail into or out of kDegraded.
  void update_degraded();
  void send_standalone_heartbeat(Gate& gate, uint8_t flags, uint32_t epoch);
  OutChunk* make_heartbeat_chunk(const Gate& gate, uint8_t flags,
                                 uint32_t epoch);
  double& hb_tx_slot(GateId id);

  EngineContext& ctx_;
  RailIndex index_;
  std::unique_ptr<drivers::Driver> driver_;
  RailInfo info_;
  IPacketIssuer* issuer_ = nullptr;

  // Reliability: dead rails carry no traffic; consecutive unanswered
  // timeouts (reset by any ack for this rail) drive the declaration.
  bool alive_ = true;
  uint32_t consec_timeouts_ = 0;
  // Rail health lifecycle (CoreConfig::rail_health). `epoch` bumps on
  // every death, so probe replies and beacons from an earlier life can
  // be told from fresh ones; `peer_epoch` is the highest epoch heard in
  // the peer's plain beacons (older ones are stale wire images from
  // retransmitted packets and are fenced).
  RailHealth health_ = RailHealth::kAlive;
  uint32_t epoch_ = 0;
  uint32_t peer_epoch_ = 0;
  uint32_t probation_hits_ = 0;      // fresh probe replies this probation
  double last_rx_us_ = 0.0;          // anything heard on this rail
  double last_fresh_reply_us_ = 0.0;
  double last_probe_us_ = -1.0e18;
  // Last beacon sent per gate (indexed by GateId, lazily sized): the
  // liveness thresholds are per-peer receive silence, so each peer must
  // hear its own beacons.
  std::vector<double> hb_tx_us_;
  runtime::TimerId health_timer_ = 0;
  bool health_timer_armed_ = false;

  // Gray-failure score (CoreConfig::adaptive). Loss is an EWMA over
  // per-entry ack/timeout outcomes; latency is a streaming digest of
  // issue-to-ack delivery times plus probe/reply RTTs (so idle rails
  // still accumulate samples); throughput is an EWMA of per-tick wire-tx
  // bytes. The degraded machine hangs off these: a sustained breach of
  // the enter thresholds turns the rail kDegraded, a sustained clean
  // reading after the minimum dwell returns it to kAlive.
  double loss_ewma_ = 0.0;
  double lat_ewma_us_ = 0.0;
  util::QuantileDigest delivery_latency_;
  double tp_est_ = 0.0;          // bytes per µs, EWMA across ticks
  uint64_t win_tx_bytes_ = 0;    // wire-tx bytes since the last tick
  double last_tp_tick_us_ = 0.0;
  double breach_since_us_ = -1.0;   // first instant of the current breach
  double clean_since_us_ = -1.0;    // first clean instant while degraded
  double degraded_at_us_ = 0.0;     // when the rail entered kDegraded
  uint32_t degraded_entries_ = 0;   // lifetime count of degraded entries
  // Alive-rail RTT probing: one outstanding probe, stamped at send so the
  // reply yields a latency sample even on an otherwise idle rail.
  bool rtt_probe_pending_ = false;
};

}  // namespace nmad::core
