// Gate: all per-peer engine state (paper: a connection to one remote
// process, possibly spanning several heterogeneous NICs).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "nmad/core/chunk.hpp"
#include "nmad/core/request.hpp"
#include "nmad/drivers/driver.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/nic.hpp"
#include "util/buffer.hpp"
#include "util/intrusive_list.hpp"
#include "util/status.hpp"

namespace nmad::core {

// Eager chunk that arrived before its receive was posted; the payload is
// copied into owned storage at arrival (charged as host work).
struct StoredFrag {
  ChunkKind kind = ChunkKind::kData;
  uint8_t flags = 0;
  uint32_t offset = 0;
  uint32_t total = 0;
  util::ByteBuffer data;
};

// RTS that arrived before its receive was posted.
struct StoredRts {
  uint32_t len = 0;
  uint32_t offset = 0;
  uint32_t total = 0;
  uint64_t cookie = 0;
};

struct UnexpectedMsg {
  std::vector<StoredFrag> frags;
  std::vector<StoredRts> rts;
};

// Receive-side state of one in-flight rendezvous block.
struct RdvRecv {
  RecvRequest* request = nullptr;
  uint32_t len = 0;
  uint32_t offset = 0;
  std::unique_ptr<simnet::BulkSink> sink;
  std::vector<uint8_t> rails;       // rails the sink is posted on
  util::ByteBuffer bounce;          // used when the dest is not contiguous
};

using MsgKey = std::pair<Tag, SeqNum>;

// One unacknowledged reliable packet: a flattened copy of the wire bytes
// (retransmittable on any rail) plus the send requests whose chunks rode
// in it. part_done() for those chunks is deferred until the ack arrives.
struct PendingPacket {
  std::shared_ptr<util::ByteBuffer> wire;
  std::vector<SendRequest*> owners;  // one entry per owned payload chunk
  RailIndex last_rail = 0;
  uint32_t retries = 0;
  double timeout_us = 0.0;  // current (backed-off) retransmit deadline
  simnet::EventId timer = 0;
  bool timer_armed = false;
  bool queued_retx = false;  // sitting in retx_queue
};

// One unacknowledged rendezvous slice, keyed by (cookie, offset). The
// body bytes live in the application buffer via job->body, so only the
// extent is recorded here.
struct PendingBulk {
  BulkJob* job = nullptr;
  size_t offset = 0;
  size_t len = 0;
  RailIndex last_rail = 0;
  uint32_t retries = 0;
  double timeout_us = 0.0;
  simnet::EventId timer = 0;
  bool timer_armed = false;
  bool queued_retx = false;
};

using BulkKey = std::pair<uint64_t, size_t>;  // (cookie, offset)

struct Gate {
  GateId id = 0;
  drivers::PeerAddr peer = 0;
  std::vector<RailIndex> rails;      // core rail indices reaching the peer
  size_t rdv_threshold = SIZE_MAX;   // per-block eager/rdv switch
  size_t max_packet = 32 * 1024;     // largest track-0 packet
  bool has_rdma = false;

  // ---- send side -------------------------------------------------------
  // The optimization window: chunks accumulate here while NICs are busy.
  util::IntrusiveList<OutChunk, &OutChunk::hook> window;
  // Rendezvous jobs whose CTS has arrived; strategies drain these first.
  util::IntrusiveList<BulkJob, &BulkJob::hook> ready_bulk;
  std::map<Tag, SeqNum> send_seq;
  std::map<uint64_t, BulkJob*> rdv_wait_cts;  // parked until CTS

  // ---- receive side ----------------------------------------------------
  std::map<Tag, SeqNum> recv_seq;
  std::map<MsgKey, RecvRequest*> active_recv;
  std::map<MsgKey, UnexpectedMsg> unexpected;
  std::map<uint64_t, RdvRecv> rdv_recv;  // cookie → in-flight bulk receive

  // ---- reliability (CoreConfig::reliability only) ----------------------
  // Send side: sliding window of unacked packets / bulk slices, plus the
  // queues of timed-out entries awaiting re-election onto an idle rail.
  uint32_t next_pkt_seq = 0;
  std::map<uint32_t, PendingPacket> pending_pkts;
  std::deque<uint32_t> retx_queue;
  std::map<BulkKey, PendingBulk> pending_bulk;
  std::deque<BulkKey> bulk_retx;

  // Receive side: duplicate suppression and deferred acknowledgements.
  // Standalone acks prefer the rail traffic was last heard on: a rail
  // that demonstrably delivers is the best guess for the return path
  // (a dark NIC silences both directions in the fault model).
  RailIndex last_heard_rail = 0;
  uint32_t recv_floor = 0;         // every packet seq below this was heard
  std::set<uint32_t> recv_seen;    // heard seqs at/above the floor
  bool ack_needed = false;
  simnet::EventId ack_timer = 0;
  bool ack_timer_armed = false;
  std::vector<BulkAck> pending_bulk_acks;  // deposited slices to ack
  std::set<uint64_t> completed_bulk;       // fully-received rdv cookies

  // Set when the peer became unreachable; every request completes with
  // this status from then on.
  bool failed = false;
  util::Status fail_status = util::ok_status();

  [[nodiscard]] bool has_rail(RailIndex rail) const {
    for (RailIndex r : rails) {
      if (r == rail) return true;
    }
    return false;
  }
};

}  // namespace nmad::core
