// Gate: all per-peer engine state (paper: a connection to one remote
// process, possibly spanning several heterogeneous NICs).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "nmad/core/chunk.hpp"
#include "nmad/core/request.hpp"
#include "nmad/drivers/driver.hpp"
#include "simnet/nic.hpp"
#include "util/buffer.hpp"
#include "util/intrusive_list.hpp"

namespace nmad::core {

// Eager chunk that arrived before its receive was posted; the payload is
// copied into owned storage at arrival (charged as host work).
struct StoredFrag {
  ChunkKind kind = ChunkKind::kData;
  uint8_t flags = 0;
  uint32_t offset = 0;
  uint32_t total = 0;
  util::ByteBuffer data;
};

// RTS that arrived before its receive was posted.
struct StoredRts {
  uint32_t len = 0;
  uint32_t offset = 0;
  uint32_t total = 0;
  uint64_t cookie = 0;
};

struct UnexpectedMsg {
  std::vector<StoredFrag> frags;
  std::vector<StoredRts> rts;
};

// Receive-side state of one in-flight rendezvous block.
struct RdvRecv {
  RecvRequest* request = nullptr;
  uint32_t len = 0;
  uint32_t offset = 0;
  std::unique_ptr<simnet::BulkSink> sink;
  std::vector<uint8_t> rails;       // rails the sink is posted on
  util::ByteBuffer bounce;          // used when the dest is not contiguous
};

using MsgKey = std::pair<Tag, SeqNum>;

struct Gate {
  GateId id = 0;
  drivers::PeerAddr peer = 0;
  std::vector<RailIndex> rails;      // core rail indices reaching the peer
  size_t rdv_threshold = SIZE_MAX;   // per-block eager/rdv switch
  size_t max_packet = 32 * 1024;     // largest track-0 packet
  bool has_rdma = false;

  // ---- send side -------------------------------------------------------
  // The optimization window: chunks accumulate here while NICs are busy.
  util::IntrusiveList<OutChunk, &OutChunk::hook> window;
  // Rendezvous jobs whose CTS has arrived; strategies drain these first.
  util::IntrusiveList<BulkJob, &BulkJob::hook> ready_bulk;
  std::map<Tag, SeqNum> send_seq;
  std::map<uint64_t, BulkJob*> rdv_wait_cts;  // parked until CTS

  // ---- receive side ----------------------------------------------------
  std::map<Tag, SeqNum> recv_seq;
  std::map<MsgKey, RecvRequest*> active_recv;
  std::map<MsgKey, UnexpectedMsg> unexpected;
  std::map<uint64_t, RdvRecv> rdv_recv;  // cookie → in-flight bulk receive

  [[nodiscard]] bool has_rail(RailIndex rail) const {
    for (RailIndex r : rails) {
      if (r == rail) return true;
    }
    return false;
  }
};

}  // namespace nmad::core
