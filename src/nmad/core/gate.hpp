// Gate: all per-peer engine state (paper: a connection to one remote
// process, possibly spanning several heterogeneous NICs).
//
// The state is carved along the paper's layer boundary: `Gate::collect`
// belongs to the collect layer (message matching, the unexpected store,
// in-flight receives) and `Gate::sched` to the scheduling layer (the
// optimization window, rendezvous send pipeline, ack/retransmit windows,
// credit accounting). The few commons every layer reads (peer, rails,
// thresholds, failure latch) stay on the Gate itself. Each layer touches
// only its own sub-struct — scripts/check.sh lints the seam.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "nmad/core/chunk.hpp"
#include "nmad/core/request.hpp"
#include "nmad/drivers/driver.hpp"
#include "nmad/runtime/runtime.hpp"
#include "util/buffer.hpp"
#include "util/intrusive_list.hpp"
#include "util/status.hpp"

namespace nmad::core {

// Eager chunk that arrived before its receive was posted; the payload is
// copied into owned storage at arrival (charged as host work).
struct StoredFrag {
  ChunkKind kind = ChunkKind::kData;
  uint8_t flags = 0;
  uint32_t offset = 0;
  uint32_t total = 0;
  util::ByteBuffer data;
};

// RTS that arrived before its receive was posted. `flags` preserves the
// wire flags (kFlagSpray in particular) so a late-posted receive replays
// the sender's spray proposal faithfully.
struct StoredRts {
  uint8_t flags = 0;
  uint32_t len = 0;
  uint32_t offset = 0;
  uint32_t total = 0;
  uint64_t cookie = 0;
};

struct UnexpectedMsg {
  std::vector<StoredFrag> frags;
  std::vector<StoredRts> rts;
  // The sender withdrew this message (cancel-RTS) before a receive was
  // posted; a matching irecv completes with kCancelled instead of waiting
  // for data that will never come.
  bool peer_cancelled = false;
};

// Receive-side state of one in-flight rendezvous block.
struct RdvRecv {
  RecvRequest* request = nullptr;
  uint32_t len = 0;
  uint32_t offset = 0;
  std::unique_ptr<drivers::BulkSink> sink;
  std::vector<uint8_t> rails;       // rails the sink is posted on
  util::ByteBuffer bounce;          // used when the dest is not contiguous
};

using MsgKey = std::pair<Tag, SeqNum>;

// Receive-side state of one sprayed message (CoreConfig::spray): a
// reorder-tolerant reassembly buffer. Fragments land in any order, on any
// rail; `covered` merges the applied [offset, end) byte ranges (the
// BulkSink dedup idiom) so duplicates from retransmission apply exactly
// once, and `frag_epoch` records the highest re-issue epoch accepted per
// fragment sequence so a stale twin straggling in after a failover
// re-issue is fenced. Fencing is per-fragment, not per-message: after a
// partial re-issue the untouched epoch-0 fragments on healthy rails are
// still the only copy of their bytes and must stay acceptable.
struct SprayRecv {
  RecvRequest* request = nullptr;
  uint32_t len = 0;     // bytes of this sprayed block
  uint32_t offset = 0;  // logical offset of the block in the message
  uint32_t total = 0;   // total message bytes (RTS total)
  uint64_t cookie = 0;  // the rendezvous cookie echoed in the CTS
  size_t received = 0;               // distinct payload bytes applied
  std::map<size_t, size_t> covered;  // merged applied intervals: off → end
  std::map<uint32_t, uint32_t> frag_epoch;  // frag_seq → accepted epoch
  util::MutableBytes region;  // direct destination (empty → bounce path)
  util::ByteBuffer bounce;    // used when the dest is not contiguous
};

// Sender-side record of one spray fragment riding in a pending packet,
// kept so a suspect-rail failover can re-create the fragment on a
// survivor without re-parsing the flattened wire image. `payload` aliases
// the application send buffer (valid until the owning request completes,
// which cannot happen while the re-issued fragment is unacked).
struct SprayFragRef {
  Tag tag = 0;
  SeqNum seq = 0;
  uint32_t frag_seq = 0;
  uint32_t epoch = 0;
  uint32_t offset = 0;
  uint32_t total = 0;
  util::ConstBytes payload;
  SendRequest* owner = nullptr;
  size_t owner_slot = 0;  // index into PendingPacket::owners
  bool reissued = false;  // a higher-epoch twin is already in flight
};

// One unacknowledged reliable packet: a flattened copy of the wire bytes
// (retransmittable on any rail) plus the send requests whose chunks rode
// in it. part_done() for those chunks is deferred until the ack arrives.
struct PendingPacket {
  std::shared_ptr<util::ByteBuffer> wire;
  std::vector<SendRequest*> owners;  // one entry per owned payload chunk
  std::vector<SprayFragRef> spray_frags;  // spray fragments riding inside
  // Cancelled rendezvous cookies whose cancel-RTS rides in this packet:
  // the ack arms their cancelled_rdv tombstones for garbage collection
  // (until then the receiver may still issue a fresh-seq CTS).
  std::vector<uint64_t> cancel_cookies;
  RailIndex last_rail = 0;
  double issued_at = -1.0;  // runtime time of the last wire handoff
  uint32_t retries = 0;
  double timeout_us = 0.0;  // current (backed-off) retransmit deadline
  runtime::TimerId timer = 0;
  bool timer_armed = false;
  bool queued_retx = false;  // sitting in retx_queue
};

// One unacknowledged rendezvous slice, keyed by (cookie, offset). The
// body bytes live in the application buffer via job->body, so only the
// extent is recorded here.
struct PendingBulk {
  BulkJob* job = nullptr;
  size_t offset = 0;
  size_t len = 0;
  RailIndex last_rail = 0;
  double issued_at = -1.0;  // runtime time of the last wire handoff
  uint32_t retries = 0;
  double timeout_us = 0.0;
  runtime::TimerId timer = 0;
  bool timer_armed = false;
  bool queued_retx = false;
};

using BulkKey = std::pair<uint64_t, size_t>;  // (cookie, offset)

// Watermark sentinel for a tombstone that is not yet eligible for the
// receive-floor GC (see GateSched::cancelled_rdv).
inline constexpr uint32_t kTombUnarmed = UINT32_MAX;

// Collect-layer state: message identification and matching. Owned and
// mutated exclusively by CollectLayer.
struct GateCollect {
  std::map<Tag, SeqNum> send_seq;
  std::map<Tag, SeqNum> recv_seq;
  std::map<MsgKey, RecvRequest*> active_recv;
  std::map<MsgKey, UnexpectedMsg> unexpected;
  std::map<uint64_t, RdvRecv> rdv_recv;  // cookie → in-flight bulk receive
  std::map<MsgKey, SprayRecv> spray_recv;  // in-flight spray reassemblies
  // Tombstones, garbage-collected behind the ack-floor watermark: each
  // entry records the receive floor at creation, and is reaped once the
  // floor has advanced a full reliability window past it — any packet
  // that could still reference the key is a duplicate below the floor by
  // then, suppressed before chunk processing.
  //
  // Completed spray reassemblies: a fragment arriving after completion
  // (retransmitted or fenced twin in flight) is dropped as a late
  // straggler rather than re-opened.
  std::map<MsgKey, uint32_t> spray_done;
  // Receiver side: message keys whose receive was cancelled; payload that
  // arrives later is dropped instead of parked as unexpected.
  std::map<MsgKey, uint32_t> cancelled_recv;
};

// Scheduling-layer state: the optimization window, rendezvous send
// pipeline, reliability windows and credit accounting. Owned and mutated
// exclusively by ScheduleLayer.
struct GateSched {
  // ---- send side -------------------------------------------------------
  // The optimization window: chunks accumulate here while NICs are busy.
  util::IntrusiveList<OutChunk, &OutChunk::hook> window;
  // Rendezvous jobs whose CTS has arrived; strategies drain these first.
  util::IntrusiveList<BulkJob, &BulkJob::hook> ready_bulk;
  std::map<uint64_t, BulkJob*> rdv_wait_cts;  // parked until CTS
  // Sender side: rendezvous cookies withdrawn by cancel(); a late CTS for
  // one of these is silently dropped instead of tripping the unknown-
  // cookie assert. Tombstone, reaped in two steps: an entry is born
  // unarmed (kTombUnarmed) and only records a receive-floor watermark
  // once the packet carrying the cancel-RTS is acked — before that the
  // receiver may still issue a *fresh-seq* CTS for the cookie, which no
  // floor advance can prove to be a duplicate. Once armed, the entry is
  // reaped a full reliability window behind the floor like the
  // GateCollect tombstones.
  std::map<uint64_t, uint32_t> cancelled_rdv;
  // Cancelled messages whose cancel-RTS has not yet been packed into a
  // wire packet, mapped to the rendezvous cookies it withdraws; the
  // packet issue path moves the cookies onto PendingPacket so the ack
  // can arm the tombstones above.
  std::map<MsgKey, std::vector<uint64_t>> cancel_wait_ack;

  // ---- reliability (CoreConfig::reliability only) ----------------------
  // Send side: sliding window of unacked packets / bulk slices, plus the
  // queues of timed-out entries awaiting re-election onto an idle rail.
  uint32_t next_pkt_seq = 0;
  std::map<uint32_t, PendingPacket> pending_pkts;
  std::deque<uint32_t> retx_queue;
  std::map<BulkKey, PendingBulk> pending_bulk;
  std::deque<BulkKey> bulk_retx;

  // Receive side: duplicate suppression and deferred acknowledgements.
  // Standalone acks prefer the rail traffic was last heard on: a rail
  // that demonstrably delivers is the best guess for the return path
  // (a dark NIC silences both directions in the fault model).
  RailIndex last_heard_rail = 0;
  uint32_t recv_floor = 0;         // every packet seq below this was heard
  std::set<uint32_t> recv_seen;    // heard seqs at/above the floor
  bool ack_needed = false;
  runtime::TimerId ack_timer = 0;
  bool ack_timer_armed = false;
  std::vector<BulkAck> pending_bulk_acks;  // deposited slices to ack
  // Fully-received rdv cookies (late slices re-acked, not asserted).
  // Tombstone: reaped behind the ack-floor watermark like cancelled_rdv.
  std::map<uint64_t, uint32_t> completed_bulk;

  // ---- flow control (CoreConfig::flow_control only) --------------------
  // Sender view: cumulative eager traffic charged so far versus the
  // receiver's latest cumulative limit (TCP-window-like; see
  // wire_format.hpp on why cumulative limits tolerate loss/reordering).
  uint64_t eager_sent_bytes = 0;
  uint64_t eager_sent_chunks = 0;
  uint64_t credit_limit_bytes = UINT64_MAX;
  uint64_t credit_limit_chunks = UINT64_MAX;
  // Uncharged eager payload sitting in the window; isend consults it to
  // decide whether a new block would overshoot the limit and should
  // degrade to rendezvous instead.
  size_t window_eager_bytes = 0;
  // A stall was observed and the probe valve may need to fire: when every
  // in-flight packet has drained and the peer still advertises no room,
  // one chunk is force-admitted so a lost credit update cannot deadlock
  // the gate.
  bool credit_stalled = false;
  runtime::TimerId credit_probe_timer = 0;
  bool credit_probe_armed = false;

  // Receiver view: cumulative eager traffic heard from the peer, bytes
  // currently parked in the unexpected store, and the limits advertised.
  uint64_t eager_heard_bytes = 0;
  uint64_t eager_heard_chunks = 0;
  size_t stored_bytes = 0;    // unexpected-store payload from this peer
  size_t stored_chunks = 0;
  uint64_t advertised_limit_bytes = 0;   // monotone, never retreats
  uint64_t advertised_limit_chunks = 0;
  uint64_t last_sent_limit_bytes = 0;    // last limits put on the wire
  uint64_t last_sent_limit_chunks = 0;
  bool credit_update_needed = false;     // drained store → re-advertise
};

struct Gate {
  GateId id = 0;
  drivers::PeerAddr peer = 0;
  std::vector<RailIndex> rails;      // core rail indices reaching the peer
  size_t rdv_threshold = SIZE_MAX;   // per-block eager/rdv switch
  size_t max_packet = 32 * 1024;     // largest track-0 packet
  bool has_rdma = false;

  GateCollect collect;
  GateSched sched;

  // Set when the peer became unreachable; every request completes with
  // this status from then on.
  bool failed = false;
  util::Status fail_status = util::ok_status();

  // Peer lifecycle (CoreConfig::peer_lifecycle; owned by the façade).
  // `peer_dead` marks a gate failed *because the peer was declared dead*:
  // heartbeats still flow so a restarted peer can announce itself, and a
  // beacon proving the peer unwound too re-opens the gate (below).
  // `peer_incarnation` is the highest incarnation heard from the peer;
  // packets announcing a lower one are from a previous life and fenced.
  bool peer_dead = false;
  uint32_t peer_incarnation = 0;
  runtime::TimerId peer_grace_timer = 0;
  bool peer_grace_armed = false;
  // Unwind fence for the rejoin handshake. `gate_gen` counts this side's
  // peer-death unwinds of this gate and rides every outgoing heartbeat
  // (in the chunk's otherwise-unused tag field); `peer_gen` is the
  // highest generation heard from the peer's current incarnation. At
  // death the (incarnation, generation) last heard from the peer is
  // recorded, and a rejoin requires proof the peer's own state is fresh:
  // a strictly newer incarnation (the peer restarted) or a strictly
  // newer generation (the peer also declared us dead and unwound). A
  // same-incarnation beacon from a peer that never unwound — the
  // asymmetric outage where only our side went dark — re-opens nothing:
  // rejoining against its live pre-death sequence/credit state would
  // dup-drop our fresh sends under its old receive floor.
  uint32_t gate_gen = 0;
  uint32_t peer_gen = 0;
  uint32_t death_incarnation = 0;
  uint32_t death_peer_gen = 0;

  [[nodiscard]] bool has_rail(RailIndex rail) const {
    for (RailIndex r : rails) {
      if (r == rail) return true;
    }
    return false;
  }
};

}  // namespace nmad::core
