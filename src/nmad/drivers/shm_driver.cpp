#include "nmad/drivers/shm_driver.hpp"

#include <chrono>
#include <cstring>
#include <vector>

#include "util/assert.hpp"

namespace nmad::drivers {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// ShmHub
// ---------------------------------------------------------------------------

ShmHub::ShmHub(size_t endpoints) : ShmHub(endpoints, Options{}) {}

ShmHub::ShmHub(size_t endpoints, Options options)
    : options_(options), n_(endpoints) {
  NMAD_ASSERT_MSG(endpoints >= 2, "shm hub needs at least two endpoints");
  rings_.reserve(n_ * n_);
  for (size_t i = 0; i < n_ * n_; ++i) {
    rings_.push_back(
        std::make_unique<util::SpscRing<ShmFrame>>(options_.ring_slots));
  }
  tokens_.reserve(n_);
  sinks_.reserve(n_);
  for (size_t i = 0; i < n_; ++i) {
    tokens_.push_back(std::make_unique<util::MpscRing<PeerAddr>>(64));
    sinks_.push_back(std::make_unique<Endpoint>());
  }
}

util::SpscRing<ShmFrame>& ShmHub::ring(PeerAddr from, PeerAddr to) {
  NMAD_ASSERT(from < n_ && to < n_ && from != to);
  return *rings_[from * n_ + to];
}

util::MpscRing<PeerAddr>& ShmHub::token_ring(PeerAddr at) {
  NMAD_ASSERT(at < n_);
  return *tokens_[at];
}

void ShmHub::post_sink(PeerAddr at, BulkSink* sink) {
  NMAD_ASSERT(at < n_ && sink != nullptr);
  Endpoint& ep = *sinks_[at];
  std::lock_guard<std::mutex> lock(ep.mu);
  const auto [it, inserted] = ep.sinks.emplace(sink->cookie(), sink);
  (void)it;
  NMAD_ASSERT_MSG(inserted, "bulk cookie already posted on this endpoint");
}

void ShmHub::remove_sink(PeerAddr at, uint64_t cookie) {
  NMAD_ASSERT(at < n_);
  Endpoint& ep = *sinks_[at];
  std::lock_guard<std::mutex> lock(ep.mu);
  ep.sinks.erase(cookie);
}

BulkSink* ShmHub::find_sink(PeerAddr at, uint64_t cookie) {
  NMAD_ASSERT(at < n_);
  Endpoint& ep = *sinks_[at];
  std::lock_guard<std::mutex> lock(ep.mu);
  const auto it = ep.sinks.find(cookie);
  return it == ep.sinks.end() ? nullptr : it->second;
}

bool ShmHub::deposit(PeerAddr at, uint64_t cookie, size_t offset,
                     const util::SegmentVec& segments) {
  NMAD_ASSERT(at < n_);
  Endpoint& ep = *sinks_[at];
  // The lock pins the region for the whole copy: cancel_bulk_recv takes
  // it too, so the engine cannot free the buffer mid-memcpy.
  std::lock_guard<std::mutex> lock(ep.mu);
  const auto it = ep.sinks.find(cookie);
  if (it == ep.sinks.end()) return false;
  util::MutableBytes region = it->second->region();
  const size_t total = segments.total_bytes();
  NMAD_ASSERT_MSG(offset + total <= region.size(),
                  "bulk slice exceeds the posted sink region");
  segments.gather_into(region.subspan(offset, total));
  return true;
}

// ---------------------------------------------------------------------------
// ShmDriver
// ---------------------------------------------------------------------------

ShmDriver::ShmDriver(ShmHub& hub, PeerAddr self, runtime::IExecLock& exec)
    : hub_(hub), self_(self), exec_(exec) {
  NMAD_ASSERT(self < hub.endpoint_count());
  caps_.name = "shm";
  caps_.supports_gather = true;
  caps_.max_gather_segments = 16;
  caps_.supports_rdma = true;  // bulk slices land straight in the region
  caps_.max_packet_bytes = sizeof(ShmFrame::payload);
  caps_.rdv_threshold = caps_.max_packet_bytes;
  caps_.latency_us = hub.options().latency_us;
  caps_.bandwidth_mbps = hub.options().bandwidth_mbps;
}

ShmDriver::~ShmDriver() { shutdown(); }

util::Status ShmDriver::init() {
  if (open_) return util::Status::ok();
  measure_caps();
  stop_.store(false, std::memory_order_relaxed);
  pump_thread_ = std::thread([this]() { pump(); });
  open_ = true;
  return util::Status::ok();
}

void ShmDriver::shutdown() {
  if (!open_) return;
  stop_.store(true, std::memory_order_release);
  if (pump_thread_.joinable()) pump_thread_.join();
  open_ = false;
}

// Real figures for the strategy layer and debug_dump: the rail's
// bandwidth is the host's memcpy bandwidth (the ring is the wire), its
// latency the cross-thread wake time a consume token needs to come back.
void ShmDriver::measure_caps() {
  constexpr size_t kProbeBytes = 4 << 20;
  std::vector<std::byte> src(kProbeBytes), dst(kProbeBytes);
  std::memset(src.data(), 0x5a, kProbeBytes);
  std::memcpy(dst.data(), src.data(), kProbeBytes);  // warm the pages
  const auto bw_start = std::chrono::steady_clock::now();
  constexpr int kReps = 8;
  for (int i = 0; i < kReps; ++i) {
    std::memcpy(dst.data(), src.data(), kProbeBytes);
  }
  const double bw_us = elapsed_us(bw_start);
  if (bw_us > 0.0) {
    caps_.bandwidth_mbps =
        static_cast<double>(kProbeBytes) * kReps / bw_us;  // bytes/µs = MB/s
  }

  // One-way latency ≈ half the atomic ping-pong round trip between two
  // threads — the same wake path a frame consume token travels.
  std::atomic<uint64_t> ping{0};
  std::atomic<uint64_t> pong{0};
  constexpr uint64_t kRounds = 2000;
  std::thread echo([&]() {
    for (uint64_t i = 1; i <= kRounds; ++i) {
      while (ping.load(std::memory_order_acquire) < i) {
        std::this_thread::yield();
      }
      pong.store(i, std::memory_order_release);
    }
  });
  const auto lat_start = std::chrono::steady_clock::now();
  for (uint64_t i = 1; i <= kRounds; ++i) {
    ping.store(i, std::memory_order_release);
    while (pong.load(std::memory_order_acquire) < i) {
      std::this_thread::yield();
    }
  }
  const double lat_us = elapsed_us(lat_start);
  echo.join();
  if (lat_us > 0.0) caps_.latency_us = lat_us / kRounds / 2.0;
}

ShmFrame* ShmDriver::claim_slot(PeerAddr to) {
  util::SpscRing<ShmFrame>& ring = hub_.ring(self_, to);
  // Single in-flight keeps the ring at ≤ 1 frame, so this spin is a
  // safety net, not a steady-state wait.
  ShmFrame* slot = ring.claim();
  while (slot == nullptr) {
    std::this_thread::yield();
    slot = ring.claim();
  }
  return slot;
}

void ShmDriver::arm_tx_done(CompletionFn on_tx_done) {
  NMAD_ASSERT_MSG(tx_state_.load(std::memory_order_relaxed) == kTxIdle,
                  "send while the previous one is still in flight");
  tx_done_ = std::move(on_tx_done);
  tx_state_.store(kTxArmed, std::memory_order_release);
}

util::Status ShmDriver::send_packet(PeerAddr to,
                                    const util::SegmentVec& segments,
                                    CompletionFn on_tx_done) {
  if (!open_) return util::failed_precondition("driver not open");
  const size_t total = segments.total_bytes();
  NMAD_ASSERT_MSG(total <= caps_.max_packet_bytes,
                  "packet exceeds the shm frame slot");
  arm_tx_done(std::move(on_tx_done));
  ShmFrame* slot = claim_slot(to);
  slot->from = self_;
  slot->kind = ShmFrame::Kind::kPacket;
  slot->orphan = false;
  slot->cookie = 0;
  slot->offset = 0;
  slot->len = total;
  segments.gather_into({slot->payload.data(), total});
  hub_.ring(self_, to).publish();
  return util::Status::ok();
}

util::Status ShmDriver::send_bulk(PeerAddr to, uint64_t cookie,
                                  size_t offset,
                                  const util::SegmentVec& segments,
                                  CompletionFn on_tx_done) {
  if (!open_) return util::failed_precondition("driver not open");
  arm_tx_done(std::move(on_tx_done));
  // Shared address space as RDMA: the body goes straight into the posted
  // region; only the header-sized note rides the ring. A sink already
  // gone (late retransmission) makes the note an orphan.
  const bool deposited = hub_.deposit(to, cookie, offset, segments);
  ShmFrame* slot = claim_slot(to);
  slot->from = self_;
  slot->kind = ShmFrame::Kind::kBulkNote;
  slot->orphan = !deposited;
  slot->cookie = cookie;
  slot->offset = offset;
  slot->len = segments.total_bytes();
  hub_.ring(self_, to).publish();
  return util::Status::ok();
}

util::Status ShmDriver::post_bulk_recv(BulkSink* sink) {
  if (!open_) return util::failed_precondition("driver not open");
  NMAD_ASSERT(sink != nullptr);
  // Posted on several rails at once for multi-rail reassembly: only the
  // first post on this hub registers (same sink, same registry).
  if (hub_.find_sink(self_, sink->cookie()) == nullptr) {
    hub_.post_sink(self_, sink);
  }
  return util::Status::ok();
}

void ShmDriver::cancel_bulk_recv(uint64_t cookie) {
  hub_.remove_sink(self_, cookie);
}

void ShmDriver::set_rx_handler(RxHandler handler) {
  rx_handler_ = std::move(handler);
}

void ShmDriver::set_bulk_orphan_handler(BulkOrphanHandler handler) {
  bulk_orphan_ = std::move(handler);
}

void ShmDriver::set_bulk_rx_handler(BulkRxHandler handler) {
  bulk_rx_ = std::move(handler);
}

void ShmDriver::pump() {
  // Spin-then-nap: a hot pingpong keeps the pump on the yield path; an
  // idle endpoint backs off to short naps instead of burning a core.
  unsigned idle_spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (pump_once()) {
      idle_spins = 0;
    } else if (++idle_spins < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

bool ShmDriver::pump_once() {
  bool did_work = false;

  // Tx completions: a consume token means the receiver owns our frame.
  PeerAddr token = 0;
  while (hub_.token_ring(self_).try_pop(token)) {
    did_work = true;
    NMAD_ASSERT_MSG(tx_state_.load(std::memory_order_acquire) == kTxArmed,
                    "consume token without a tx in flight");
    runtime::ExecGuard guard(exec_);
    CompletionFn fn = std::move(tx_done_);
    tx_done_.reset();
    // Idle before the callback: the completion is exactly what elects
    // (and sends) the next packet.
    tx_state_.store(kTxIdle, std::memory_order_release);
    if (fn) fn();
  }

  // Rx: drain every inbound ring, delivering under the exec lock.
  const size_t n = hub_.endpoint_count();
  for (PeerAddr from = 0; from < n; ++from) {
    if (from == self_) continue;
    util::SpscRing<ShmFrame>& ring = hub_.ring(from, self_);
    while (ShmFrame* frame = ring.front()) {
      did_work = true;
      {
        runtime::ExecGuard guard(exec_);
        if (frame->kind == ShmFrame::Kind::kPacket) {
          NMAD_ASSERT_MSG(static_cast<bool>(rx_handler_),
                          "packet arrived before a handler was installed");
          RxPacket packet;
          packet.from = frame->from;
          packet.bytes.append(frame->payload.data(), frame->len);
          rx_handler_(std::move(packet));
        } else {
          if (bulk_rx_) bulk_rx_(frame->from);
          BulkSink* sink =
              frame->orphan ? nullptr
                            : hub_.find_sink(self_, frame->cookie);
          if (sink != nullptr) {
            sink->note_deposited(frame->offset, frame->len);
          } else if (bulk_orphan_) {
            bulk_orphan_(frame->from, frame->cookie, frame->offset,
                         frame->len);
          } else {
            NMAD_ASSERT_MSG(false, "orphan bulk slice without a handler");
          }
        }
      }
      const PeerAddr sender = frame->from;
      ring.pop_front();
      // Frame fully consumed: release the sender's in-flight slot.
      const bool pushed =
          hub_.token_ring(sender).try_push(PeerAddr{sender});
      NMAD_ASSERT_MSG(pushed, "tx-done token ring overflow");
    }
  }
  return did_work;
}

}  // namespace nmad::drivers
