#include "nmad/drivers/sim_driver.hpp"

#include "util/logging.hpp"

namespace nmad::drivers {

DriverCaps caps_from_profile(const simnet::NicProfile& profile) {
  DriverCaps caps;
  caps.name = profile.name;
  caps.supports_gather = profile.has_gather();
  caps.max_gather_segments = profile.gather_max_segments;
  caps.supports_rdma = profile.rdma;
  caps.rdv_threshold = profile.rdv_threshold;
  caps.max_packet_bytes = profile.max_eager_frame;
  caps.latency_us = profile.latency_us;
  caps.bandwidth_mbps = profile.bandwidth_mbps;
  return caps;
}

SimDriver::SimDriver(simnet::SimWorld& world, simnet::SimNode& node,
                     simnet::SimNic& nic)
    : world_(world), node_(node), nic_(nic),
      caps_(caps_from_profile(nic.profile())) {}

util::Status SimDriver::init() {
  if (open_) return util::already_exists("driver already initialised");
  open_ = true;
  return util::ok_status();
}

void SimDriver::shutdown() { open_ = false; }

bool SimDriver::tx_idle() const {
  return open_ && !pending_tx_ && nic_.tx_idle();
}

void SimDriver::when_cpu_free(simnet::EventFn fn) {
  const simnet::SimTime free_at = node_.cpu().free_at();
  if (free_at <= world_.now()) {
    fn();
  } else {
    world_.at(free_at, std::move(fn));
  }
}

size_t SimDriver::stage_frame(const util::SegmentVec& segments, bool bulk) {
  const size_t total = segments.total_bytes();
  size_t wire_segments = segments.count();
  const bool gather_ok =
      bulk ? wire_segments <= caps_.max_gather_segments
           : caps_.supports_gather &&
                 wire_segments <= caps_.max_gather_segments;
  if (!gather_ok) {
    // No gather DMA: the host copies the packet into a bounce buffer.
    node_.cpu().charge_memcpy(total);
    wire_segments = 1;
  }
  // The frame content is captured now (the engine may release chunk
  // buffers at tx-done); the NIC copies it again at launch, so the member
  // buffer is free for reuse once the next send is admitted.
  tx_frame_.resize(total);
  segments.gather_into(tx_frame_.view());
  return wire_segments;
}

void SimDriver::finish_tx() {
  pending_tx_ = false;
  // Move out first: the completion routinely issues the next send, which
  // re-arms tx_done_.
  auto fn = std::move(tx_done_);
  tx_done_.reset();
  if (fn) fn();
}

util::Status SimDriver::send_packet(PeerAddr to,
                                    const util::SegmentVec& segments,
                                    CompletionFn on_tx_done) {
  if (!open_) return util::closed("send on closed driver");
  NMAD_ASSERT_MSG(!pending_tx_, "overlapping sends on one driver");
  pending_tx_ = true;
  tx_done_ = std::move(on_tx_done);
  const size_t wire_segments = stage_frame(segments, /*bulk=*/false);

  when_cpu_free([this, to, wire_segments]() {
    nic_.send_frame(to, tx_frame_.view(), wire_segments,
                    [this]() { finish_tx(); });
  });
  return util::ok_status();
}

util::Status SimDriver::send_bulk(PeerAddr to, uint64_t cookie,
                                  size_t offset,
                                  const util::SegmentVec& segments,
                                  CompletionFn on_tx_done) {
  if (!open_) return util::closed("send on closed driver");
  if (!caps_.supports_rdma) {
    return util::unimplemented("bulk send without RDMA support");
  }
  NMAD_ASSERT_MSG(!pending_tx_, "overlapping sends on one driver");
  pending_tx_ = true;
  tx_done_ = std::move(on_tx_done);
  const size_t wire_segments = stage_frame(segments, /*bulk=*/true);

  when_cpu_free([this, to, cookie, offset, wire_segments]() {
    nic_.send_bulk(to, cookie, offset, tx_frame_.view(), wire_segments,
                   [this]() { finish_tx(); });
  });
  return util::ok_status();
}

util::Status SimDriver::post_bulk_recv(BulkSink* sink) {
  if (!open_) return util::closed("post on closed driver");
  if (!caps_.supports_rdma) {
    return util::unimplemented("bulk recv without RDMA support");
  }
  // The NIC's registered window shares the engine sink's region (the NIC
  // DMA-writes the destination directly); completion stays with the
  // engine sink, which merges extents globally across every rail the
  // cookie is posted on.
  auto wrap = std::make_unique<simnet::BulkSink>(
      sink->cookie(), sink->region(), sink->expected(), nullptr);
  wrap->set_on_deposit([sink](size_t offset, size_t len) {
    sink->note_deposited(offset, len);
  });
  nic_.post_bulk_sink(wrap.get());
  const bool inserted =
      wrapped_sinks_.emplace(sink->cookie(), std::move(wrap)).second;
  NMAD_ASSERT_MSG(inserted, "duplicate bulk cookie on driver");
  return util::ok_status();
}

void SimDriver::cancel_bulk_recv(uint64_t cookie) {
  nic_.remove_bulk_sink(cookie);
  const size_t erased = wrapped_sinks_.erase(cookie);
  NMAD_ASSERT_MSG(erased == 1, "cancelling unknown bulk cookie");
}

void SimDriver::set_bulk_orphan_handler(BulkOrphanHandler handler) {
  nic_.set_bulk_orphan_handler(
      [handler = std::move(handler)](simnet::NodeId src, uint64_t cookie,
                                     size_t offset, size_t len) mutable {
        handler(src, cookie, offset, len);
      });
}

void SimDriver::set_bulk_rx_handler(BulkRxHandler handler) {
  nic_.set_bulk_rx_handler(
      [handler = std::move(handler)](simnet::NodeId src) mutable {
        handler(src);
      });
}

void SimDriver::set_rx_handler(RxHandler handler) {
  nic_.set_rx_handler(
      [handler = std::move(handler)](simnet::RxFrame&& frame) mutable {
        RxPacket packet;
        packet.from = frame.src_node;
        packet.bytes = std::move(frame.bytes);
        handler(std::move(packet));
      });
}

}  // namespace nmad::drivers
