#include "nmad/drivers/sim_driver.hpp"

#include "util/logging.hpp"

namespace nmad::drivers {

DriverCaps caps_from_profile(const simnet::NicProfile& profile) {
  DriverCaps caps;
  caps.name = profile.name;
  caps.supports_gather = profile.has_gather();
  caps.max_gather_segments = profile.gather_max_segments;
  caps.supports_rdma = profile.rdma;
  caps.rdv_threshold = profile.rdv_threshold;
  caps.max_packet_bytes = profile.max_eager_frame;
  caps.latency_us = profile.latency_us;
  caps.bandwidth_mbps = profile.bandwidth_mbps;
  return caps;
}

SimDriver::SimDriver(simnet::SimWorld& world, simnet::SimNode& node,
                     simnet::SimNic& nic)
    : world_(world), node_(node), nic_(nic),
      caps_(caps_from_profile(nic.profile())) {}

util::Status SimDriver::init() {
  if (open_) return util::already_exists("driver already initialised");
  open_ = true;
  return util::ok_status();
}

void SimDriver::shutdown() { open_ = false; }

bool SimDriver::tx_idle() const {
  return open_ && !pending_tx_ && nic_.tx_idle();
}

void SimDriver::when_cpu_free(std::function<void()> fn) {
  const simnet::SimTime free_at = node_.cpu().free_at();
  if (free_at <= world_.now()) {
    fn();
  } else {
    world_.at(free_at, std::move(fn));
  }
}

util::Status SimDriver::send_packet(PeerAddr to,
                                    const util::SegmentVec& segments,
                                    CompletionFn on_tx_done) {
  if (!open_) return util::closed("send on closed driver");
  NMAD_ASSERT_MSG(!pending_tx_, "overlapping sends on one driver");
  pending_tx_ = true;

  const size_t total = segments.total_bytes();
  size_t wire_segments = segments.count();
  if (!caps_.supports_gather || wire_segments > caps_.max_gather_segments) {
    // No gather DMA: the host copies the packet into a bounce buffer.
    node_.cpu().charge_memcpy(total);
    wire_segments = 1;
  }

  // The frame content is captured now (the engine may release chunk
  // buffers at tx-done); the copy itself is sim bookkeeping.
  auto frame = std::make_shared<util::ByteBuffer>();
  frame->resize(total);
  segments.gather_into(frame->view());

  when_cpu_free([this, to, frame, wire_segments,
                 on_tx_done = std::move(on_tx_done)]() mutable {
    nic_.send_frame(to, frame->view(), wire_segments,
                    [this, frame, on_tx_done = std::move(on_tx_done)]() {
                      pending_tx_ = false;
                      if (on_tx_done) on_tx_done();
                    });
  });
  return util::ok_status();
}

util::Status SimDriver::send_bulk(PeerAddr to, uint64_t cookie,
                                  size_t offset,
                                  const util::SegmentVec& segments,
                                  CompletionFn on_tx_done) {
  if (!open_) return util::closed("send on closed driver");
  if (!caps_.supports_rdma) {
    return util::unimplemented("bulk send without RDMA support");
  }
  NMAD_ASSERT_MSG(!pending_tx_, "overlapping sends on one driver");
  pending_tx_ = true;

  size_t wire_segments = segments.count();
  if (wire_segments > caps_.max_gather_segments) {
    node_.cpu().charge_memcpy(segments.total_bytes());
    wire_segments = 1;
  }

  auto frame = std::make_shared<util::ByteBuffer>();
  frame->resize(segments.total_bytes());
  segments.gather_into(frame->view());

  when_cpu_free([this, to, cookie, offset, frame, wire_segments,
                 on_tx_done = std::move(on_tx_done)]() mutable {
    nic_.send_bulk(to, cookie, offset, frame->view(), wire_segments,
                   [this, frame, on_tx_done = std::move(on_tx_done)]() {
                     pending_tx_ = false;
                     if (on_tx_done) on_tx_done();
                   });
  });
  return util::ok_status();
}

util::Status SimDriver::post_bulk_recv(simnet::BulkSink* sink) {
  if (!open_) return util::closed("post on closed driver");
  if (!caps_.supports_rdma) {
    return util::unimplemented("bulk recv without RDMA support");
  }
  nic_.post_bulk_sink(sink);
  return util::ok_status();
}

void SimDriver::cancel_bulk_recv(uint64_t cookie) {
  nic_.remove_bulk_sink(cookie);
}

void SimDriver::set_bulk_orphan_handler(BulkOrphanHandler handler) {
  nic_.set_bulk_orphan_handler(
      [handler = std::move(handler)](simnet::NodeId src, uint64_t cookie,
                                     size_t offset, size_t len) {
        handler(src, cookie, offset, len);
      });
}

void SimDriver::set_bulk_rx_handler(BulkRxHandler handler) {
  nic_.set_bulk_rx_handler(
      [handler = std::move(handler)](simnet::NodeId src) { handler(src); });
}

void SimDriver::set_rx_handler(RxHandler handler) {
  nic_.set_rx_handler(
      [handler = std::move(handler)](simnet::RxFrame&& frame) {
        RxPacket packet;
        packet.from = frame.src_node;
        packet.bytes = std::move(frame.bytes);
        handler(std::move(packet));
      });
}

}  // namespace nmad::drivers
