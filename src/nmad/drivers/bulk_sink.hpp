// Engine-owned bulk receive window, the driver seam's replacement for
// leaking the simulated fabric's registered-memory handle through
// Driver::post_bulk_recv.
//
// One sink is one pre-posted destination region for track-1 (bulk /
// zero-copy) data, addressed by cookie. It may be posted on several
// rails at once (multi-rail reassembly into one region): coverage is a
// merged-interval set, so overlapping re-deposits — slice
// retransmissions, or the same slice landing via two rails — are
// idempotent and received() counts distinct covered bytes. Drivers call
// deposit() when they carry the payload themselves (the shm rings), or
// note_deposited() when the bytes are already in the region (the
// simulated NIC writes the region directly); both fire the same
// observer/completion sequence, so the engine above cannot tell the
// transports apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "util/buffer.hpp"
#include "util/inline_fn.hpp"

namespace nmad::drivers {

class BulkSink {
 public:
  // Capacity sized for the engine's callbacks ([this, gate_id, cookie]).
  using CompletionFn = util::InlineFunction<48>;
  using DepositFn = util::InlineFunction<48, void(size_t, size_t)>;

  BulkSink(uint64_t cookie, util::MutableBytes region, size_t expected,
           CompletionFn on_complete);

  BulkSink(const BulkSink&) = delete;
  BulkSink& operator=(const BulkSink&) = delete;

  [[nodiscard]] uint64_t cookie() const { return cookie_; }
  [[nodiscard]] util::MutableBytes region() const { return region_; }
  [[nodiscard]] size_t expected() const { return expected_; }
  [[nodiscard]] size_t received() const { return received_; }
  [[nodiscard]] bool complete() const { return received_ == expected_; }

  // Observer fired on every deposit, duplicates included — the
  // reliability layer acks each slice it hears, even retransmitted ones.
  void set_on_deposit(DepositFn fn) { on_deposit_ = std::move(fn); }

  // Copies `data` into the region at `offset` and accounts it.
  void deposit(size_t offset, util::ConstBytes data);

  // Accounts a slice a driver already placed in the region (zero-copy
  // transports and the simulated NIC's direct writes).
  void note_deposited(size_t offset, size_t len);

 private:
  uint64_t cookie_;
  util::MutableBytes region_;
  size_t expected_;
  size_t received_ = 0;
  std::map<size_t, size_t> covered_;  // offset → end, disjoint intervals
  CompletionFn on_complete_;
  DepositFn on_deposit_;
};

}  // namespace nmad::drivers
