// The nmad transfer-layer driver interface (paper §3.3/§4).
//
// "The implementation of each corresponding transfer layer consists in a
// minimal network API (initialisation, closing, sending, receiving and
// polling methods) ... In addition, some information are collected such as
// the threshold for the rendez-vous protocol or the availability of the
// gather/scatter or as well the remote direct access (RDMA) functionality."
//
// One Driver instance is one local NIC endpoint; it can reach every peer
// on its rail. Drivers are strictly mechanism: they move fully-built
// packets and bulk bodies, and report when the NIC is idle so the
// scheduler above can elect the next optimized packet.
//
// All callbacks are allocation-free InlineFunctions: the per-packet
// handoff across this seam is on the engine's steady-state hot path, and
// the zero-alloc guarantee (test_alloc_churn) extends through it.
#pragma once

#include <cstdint>
#include <string>

#include "nmad/drivers/bulk_sink.hpp"
#include "util/buffer.hpp"
#include "util/inline_fn.hpp"
#include "util/status.hpp"

namespace nmad::drivers {

// Peer address on a rail. In the simulated fabric this is the node id;
// the shm driver uses the rank within its hub; a production driver would
// hold whatever its network names peers with.
using PeerAddr = uint32_t;

struct DriverCaps {
  std::string name;
  bool supports_gather = false;
  uint32_t max_gather_segments = 1;
  bool supports_rdma = false;
  size_t rdv_threshold = 32 * 1024;   // recommended eager/rdv switch
  size_t max_packet_bytes = 32 * 1024;  // largest track-0 packet
  double latency_us = 0.0;      // nominal, for strategy decisions
  double bandwidth_mbps = 0.0;  // nominal, for strategy decisions
};

// A fully-received track-0 packet surfaced to the engine.
struct RxPacket {
  PeerAddr from = 0;
  util::ByteBuffer bytes;
};

class Driver {
 public:
  // Capacities: the scheduler's tx-done closures measure ≤ 32 bytes, the
  // engine's rx/orphan handlers capture only `this` — anything larger
  // spills to the heap and trips the allocation-regression tests.
  using CompletionFn = util::InlineFunction<48>;
  using RxHandler = util::InlineFunction<32, void(RxPacket&&)>;
  // (from, cookie, offset, len): a bulk slice addressed to a sink that is
  // no longer posted — a late retransmission under the reliability layer.
  using BulkOrphanHandler =
      util::InlineFunction<32, void(PeerAddr, uint64_t, size_t, size_t)>;
  // (from): any track-1 arrival on this rail, sink hit or orphan. Bulk
  // deposits never reach the rx handler, so the health monitor needs this
  // hook to count a saturated bulk stream as liveness evidence.
  using BulkRxHandler = util::InlineFunction<32, void(PeerAddr)>;

  virtual ~Driver() = default;

  [[nodiscard]] virtual const DriverCaps& caps() const = 0;

  [[nodiscard]] virtual util::Status init() = 0;
  virtual void shutdown() = 0;

  // True when a new send could be issued right now. The engine only packs
  // a new packet when the NIC is idle — this is the just-in-time election
  // point of §3.1.
  [[nodiscard]] virtual bool tx_idle() const = 0;

  // Sends one track-0 packet built by the scheduler. `segments` is a
  // gather list (header buffer interleaved with payload views); drivers
  // without gather support copy through a bounce buffer at modelled host
  // cost. `on_tx_done` fires when the NIC is free again.
  virtual util::Status send_packet(PeerAddr to,
                                   const util::SegmentVec& segments,
                                   CompletionFn on_tx_done) = 0;

  // Sends part of a rendezvous body into the sink the receiver posted
  // under `cookie`, at `offset` within that sink.
  virtual util::Status send_bulk(PeerAddr to, uint64_t cookie, size_t offset,
                                 const util::SegmentVec& segments,
                                 CompletionFn on_tx_done) = 0;

  // Posts a bulk receive window. The sink is owned by the engine and may
  // be posted on several rails at once (multi-rail reassembly into one
  // destination region); the engine cancels it on every rail once the
  // sink completes. Drivers wrap their own memory-registration handle
  // around it internally.
  virtual util::Status post_bulk_recv(BulkSink* sink) = 0;
  virtual void cancel_bulk_recv(uint64_t cookie) = 0;

  // Registers the engine's packet-arrival callback.
  virtual void set_rx_handler(RxHandler handler) = 0;

  // Optional: without a handler, orphan bulk arrivals stay a hard
  // protocol error (lossless operation). Drivers that cannot observe
  // orphans may ignore this.
  virtual void set_bulk_orphan_handler(BulkOrphanHandler handler) {
    (void)handler;
  }

  // Optional: drivers that cannot observe deposits may ignore it.
  virtual void set_bulk_rx_handler(BulkRxHandler handler) {
    (void)handler;
  }

  // Drives any driver-internal progress. The simulated drivers are fully
  // event-driven and need no polling; a production driver would reap
  // completion queues here.
  virtual void poll() = 0;
};

}  // namespace nmad::drivers
