// ShmDriver: the first wall-clock transport — threaded shared-memory
// rails inside one process.
//
// A ShmHub is one rail's fabric: for every directed endpoint pair it owns
// a bounded SPSC ring of fixed-size frame slots (util::SpscRing), and for
// every endpoint a registry of posted bulk sinks. Track-0 packets are
// gather-copied into a ring slot by the sender and copied out by the
// receiver's pump thread — the ring *is* the wire. Track-1 rendezvous
// slices exploit the shared address space like RDMA exploits the remote
// one: the sender copies the body straight into the posted sink region
// (under the hub's sink-registry lock) and enqueues a payload-free
// "deposit note"; the receiver's pump then runs the sink's interval-merge
// and ack machinery under the engine's exec lock. A slice whose sink is
// gone at send time travels as an orphan note, surfacing through the
// same orphan hook the simulated NIC uses.
//
// Threading: each endpoint runs one pump thread. It drains the inbound
// rings and delivers everything under the runtime's IExecLock — the same
// serialization contract the WallClockRuntime's timer thread follows, so
// exactly one thread is ever inside a Core. Tx-done completions fire when
// the *receiver* consumes the frame: the consuming pump pushes a token
// into the sender's MPSC completion ring and the sender's own pump fires
// the callback under its exec lock. send_* never invoke the engine
// reentrantly, and — because the engine keeps a single packet in flight
// per rail — no directed ring ever holds more than one un-acked frame,
// so a full ring cannot wedge two flooding endpoints against each other.
//
// Steady-state sends and deliveries touch only the preallocated rings and
// the engine's pools; the per-packet handoff stays allocation-free
// through the InlineFunction seam.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nmad/drivers/driver.hpp"
#include "nmad/runtime/runtime.hpp"
#include "util/ring.hpp"

namespace nmad::drivers {

// One wire frame slot. Packets carry their bytes inline; bulk notes are
// headers only (the payload went directly into the sink region).
struct ShmFrame {
  enum class Kind : uint8_t { kPacket, kBulkNote };

  PeerAddr from = 0;
  Kind kind = Kind::kPacket;
  // Bulk notes: slice identity, plus whether the sink was already gone
  // when the sender looked (the slice then carried no bytes).
  bool orphan = false;
  uint64_t cookie = 0;
  size_t offset = 0;
  size_t len = 0;
  std::array<std::byte, 32 * 1024> payload;  // packets only, first `len`
};

class ShmHub {
 public:
  struct Options {
    size_t ring_slots = 64;  // frames per directed pair (power of two)
    // Nominal figures reported before init() self-measures real ones.
    double latency_us = 1.0;
    double bandwidth_mbps = 4000.0;
  };

  explicit ShmHub(size_t endpoints);
  ShmHub(size_t endpoints, Options options);

  [[nodiscard]] size_t endpoint_count() const { return sinks_.size(); }
  [[nodiscard]] const Options& options() const { return options_; }

  [[nodiscard]] util::SpscRing<ShmFrame>& ring(PeerAddr from, PeerAddr to);

  // Tx-done tokens for endpoint `at`: every pump that consumes one of
  // its frames pushes here (hence multi-producer), its own pump drains.
  [[nodiscard]] util::MpscRing<PeerAddr>& token_ring(PeerAddr at);

  // Sink registry (one per destination endpoint, lock per endpoint).
  void post_sink(PeerAddr at, BulkSink* sink);
  void remove_sink(PeerAddr at, uint64_t cookie);
  [[nodiscard]] BulkSink* find_sink(PeerAddr at, uint64_t cookie);
  // Copies `segments` into the sink region at `offset`, holding the
  // registry lock so the region cannot be cancelled out from under the
  // copy. False when no sink is posted under `cookie` (orphan slice).
  [[nodiscard]] bool deposit(PeerAddr at, uint64_t cookie, size_t offset,
                             const util::SegmentVec& segments);

 private:
  struct Endpoint {
    std::mutex mu;
    std::map<uint64_t, BulkSink*> sinks;
  };

  Options options_;
  size_t n_;
  // [from * n_ + to]; unique_ptr because rings are not movable.
  std::vector<std::unique_ptr<util::SpscRing<ShmFrame>>> rings_;
  std::vector<std::unique_ptr<util::MpscRing<PeerAddr>>> tokens_;
  std::vector<std::unique_ptr<Endpoint>> sinks_;
};

class ShmDriver final : public Driver {
 public:
  // `exec` is the engine's serialization lock (the WallClockRuntime); the
  // pump thread enters the engine only under it.
  ShmDriver(ShmHub& hub, PeerAddr self, runtime::IExecLock& exec);
  ~ShmDriver() override;

  [[nodiscard]] const DriverCaps& caps() const override { return caps_; }

  // Self-measures the rail's real figures — memcpy bandwidth and
  // cross-thread wake latency — into caps() before starting the pump.
  [[nodiscard]] util::Status init() override;
  void shutdown() override;

  [[nodiscard]] bool tx_idle() const override {
    return tx_state_.load(std::memory_order_acquire) == kTxIdle;
  }

  util::Status send_packet(PeerAddr to, const util::SegmentVec& segments,
                           CompletionFn on_tx_done) override;
  util::Status send_bulk(PeerAddr to, uint64_t cookie, size_t offset,
                         const util::SegmentVec& segments,
                         CompletionFn on_tx_done) override;
  util::Status post_bulk_recv(BulkSink* sink) override;
  void cancel_bulk_recv(uint64_t cookie) override;

  void set_rx_handler(RxHandler handler) override;
  void set_bulk_orphan_handler(BulkOrphanHandler handler) override;
  void set_bulk_rx_handler(BulkRxHandler handler) override;

  // Progress lives on the pump thread; poll is a no-op.
  void poll() override {}

 private:
  static constexpr uint8_t kTxIdle = 0;
  static constexpr uint8_t kTxArmed = 1;

  void pump();
  bool pump_once();
  // Claims a slot in the self→to ring, spinning out the (rare) full-ring
  // backpressure window.
  ShmFrame* claim_slot(PeerAddr to);
  void arm_tx_done(CompletionFn on_tx_done);
  void measure_caps();

  ShmHub& hub_;
  const PeerAddr self_;
  runtime::IExecLock& exec_;
  DriverCaps caps_;

  RxHandler rx_handler_;
  BulkOrphanHandler bulk_orphan_;
  BulkRxHandler bulk_rx_;

  // Single in-flight tx (the engine only elects into an idle NIC). The
  // engine arms under the exec lock; the pump fires the completion under
  // it too once the consume token comes back, so the handoff needs only
  // the release/acquire pair on tx_state_.
  std::atomic<uint8_t> tx_state_{kTxIdle};
  CompletionFn tx_done_;

  std::atomic<bool> stop_{false};
  bool open_ = false;
  std::thread pump_thread_;
};

}  // namespace nmad::drivers
