#include "nmad/drivers/bulk_sink.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace nmad::drivers {

BulkSink::BulkSink(uint64_t cookie, util::MutableBytes region,
                   size_t expected, CompletionFn on_complete)
    : cookie_(cookie),
      region_(region),
      expected_(expected),
      on_complete_(std::move(on_complete)) {
  NMAD_ASSERT(expected <= region.size());
}

void BulkSink::deposit(size_t offset, util::ConstBytes data) {
  NMAD_ASSERT_MSG(offset + data.size() <= region_.size(),
                  "bulk deposit outside sink region");
  util::copy_bytes(region_.subspan(offset, data.size()), data);
  note_deposited(offset, data.size());
}

void BulkSink::note_deposited(size_t offset, size_t len) {
  NMAD_ASSERT_MSG(offset + len <= region_.size(),
                  "bulk deposit outside sink region");
  // Merge [offset, offset + len) into the covered-interval set so that
  // retransmitted slices never double-count towards completion.
  size_t begin = offset;
  size_t end = offset + len;
  auto it = covered_.upper_bound(begin);
  if (it != covered_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = covered_.erase(prev);
    }
  }
  while (it != covered_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = covered_.erase(it);
  }
  covered_.emplace(begin, end);
  received_ = 0;
  for (const auto& [b, e] : covered_) received_ += e - b;
  NMAD_ASSERT_MSG(received_ <= expected_, "bulk sink overfilled");

  if (on_deposit_) on_deposit_(offset, len);
  if (received_ == expected_ && on_complete_) {
    // Move out first: the callback commonly frees the sink.
    auto fn = std::move(on_complete_);
    on_complete_.reset();
    fn();
  }
}

}  // namespace nmad::drivers
