// Transfer-layer driver over a simulated NIC.
//
// Bridges the engine's driver API onto simnet: charges host CPU where a
// real driver would burn cycles (bounce-buffer copies when the NIC lacks
// gather DMA), defers NIC launches until the host CPU is free, and wraps
// the engine's transport-neutral BulkSinks in the simulated NIC's own
// registered-window objects.
//
// The send path is allocation-free in steady state: the frame staging
// buffer and the in-flight completion are driver members (the single-
// in-flight contract means one of each suffices), so every closure handed
// to the simulator captures only `this` plus a few scalars and stays
// inside its InlineFunction.
#pragma once

#include <map>
#include <memory>

#include "nmad/drivers/driver.hpp"
#include "simnet/fabric.hpp"
#include "simnet/nic.hpp"
#include "simnet/world.hpp"

namespace nmad::drivers {

class SimDriver final : public Driver {
 public:
  // `node` supplies the CPU model; `nic` must belong to that node.
  SimDriver(simnet::SimWorld& world, simnet::SimNode& node,
            simnet::SimNic& nic);

  [[nodiscard]] const DriverCaps& caps() const override { return caps_; }

  [[nodiscard]] util::Status init() override;
  void shutdown() override;

  [[nodiscard]] bool tx_idle() const override;

  util::Status send_packet(PeerAddr to, const util::SegmentVec& segments,
                           CompletionFn on_tx_done) override;
  util::Status send_bulk(PeerAddr to, uint64_t cookie, size_t offset,
                         const util::SegmentVec& segments,
                         CompletionFn on_tx_done) override;
  util::Status post_bulk_recv(BulkSink* sink) override;
  void cancel_bulk_recv(uint64_t cookie) override;

  void set_rx_handler(RxHandler handler) override;
  void set_bulk_orphan_handler(BulkOrphanHandler handler) override;
  void set_bulk_rx_handler(BulkRxHandler handler) override;
  void poll() override {}  // fully event-driven

  [[nodiscard]] simnet::SimNic& nic() { return nic_; }

 private:
  // Runs `fn` as soon as the host CPU is free (possibly immediately).
  void when_cpu_free(simnet::EventFn fn);
  // Stages `segments` into the member frame buffer and returns the wire
  // segment count after the gather-capability check (charging the bounce
  // copy when the NIC cannot gather).
  size_t stage_frame(const util::SegmentVec& segments, bool bulk);
  void finish_tx();

  simnet::SimWorld& world_;
  simnet::SimNode& node_;
  simnet::SimNic& nic_;
  DriverCaps caps_;
  bool open_ = false;
  bool pending_tx_ = false;  // send accepted but NIC not yet done

  // In-flight send state; valid only while pending_tx_. The buffer is
  // reused send-to-send (the NIC copies it at launch, and the single-
  // in-flight contract keeps launches and stagings strictly alternating).
  util::ByteBuffer tx_frame_;
  CompletionFn tx_done_;

  // The simulated NIC's view of each posted engine sink: a simnet window
  // over the same destination region, completion left to the engine side
  // (deposits forward raw extents, the engine's interval set dedups —
  // identical accounting whether one rail feeds the sink or several).
  std::map<uint64_t, std::unique_ptr<simnet::BulkSink>> wrapped_sinks_;
};

// Builds driver caps from a NIC profile (shared with tests).
DriverCaps caps_from_profile(const simnet::NicProfile& profile);

}  // namespace nmad::drivers
