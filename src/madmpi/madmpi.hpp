// MAD-MPI: the paper's proof-of-concept MPI subset over NewMadeleine.
//
// "this implementation ... is based on the point-to-point nonblocking
// posting (isend, irecv) and completion (wait, test) operations of MPI,
// these four operations being directly mapped to the equivalent operations
// of NewMadeleine." (§3.4)
//
// The communicator context is folded into the high bits of the engine tag,
// so one gate carries every communicator — which is precisely why the
// optimizer can aggregate chunks "even if they belong to different logical
// communication flows (i.e. MPI communicators)" (§5.2).
//
// Derived datatypes are (usually) NOT packed: each memory block of the
// type becomes one engine chunk, letting the aggregation strategy combine
// the small blocks with the rendezvous control messages of the large ones
// (§5.3). The exception is types made of *many tiny* blocks (e.g. a
// strided column of single doubles), where per-block headers would dwarf
// the data: those are packed through a bounce buffer, the threshold
// policy of the MPICH-Madeleine datatype study the paper cites as [3].
#pragma once

#include <vector>

#include "madmpi/mpi.hpp"
#include "nmad/api/session.hpp"
#include "nmad/core/core.hpp"

namespace nmad::mpi {

class MadMpiEndpoint final : public Endpoint {
 public:
  // `rank_gates[r]` is the engine gate leading to rank r (unused self slot).
  MadMpiEndpoint(simnet::SimWorld& world, core::Core& core, int rank,
                 int size, std::vector<core::GateId> rank_gates);

  Request* isend(const void* buf, int count, const Datatype& type, int dest,
                 int tag, Comm comm) override;
  Request* irecv(void* buf, int count, const Datatype& type, int source,
                 int tag, Comm comm) override;
  ProbeStatus iprobe(int source, int tag, Comm comm) override;
  void free_request(Request* req) override;
  bool cancel(Request* req) override;
  bool set_deadline(Request* req, double timeout_us) override;
  // Drains the engine: Finalize flushes in-flight traffic (retransmit
  // windows, deferred acks, streaming rendezvous bodies) instead of
  // abandoning it mid-protocol.
  util::Status finalize(double deadline_us) override;

  [[nodiscard]] core::Core& engine() { return core_; }

 private:
  class MadRequest;

  [[nodiscard]] static core::Tag fold_tag(Comm comm, int tag) {
    // Context in the high 32 bits, MPI tag in the low 32.
    return (static_cast<core::Tag>(comm.context) << 32) |
           static_cast<uint32_t>(tag);
  }

  core::Core& core_;
  std::vector<core::GateId> rank_gates_;
};

// Builds a complete MAD-MPI world over a simulated cluster: one engine and
// one endpoint per node. Keeps the Cluster alive for the endpoints.
class MadMpiWorld {
 public:
  explicit MadMpiWorld(api::ClusterOptions options = {});

  [[nodiscard]] Endpoint& ep(int rank) { return *endpoints_[rank]; }
  [[nodiscard]] api::Cluster& cluster() { return cluster_; }
  [[nodiscard]] simnet::SimWorld& world() { return cluster_.world(); }
  [[nodiscard]] int size() const {
    return static_cast<int>(endpoints_.size());
  }

 private:
  api::Cluster cluster_;
  std::vector<std::unique_ptr<MadMpiEndpoint>> endpoints_;
};

}  // namespace nmad::mpi
