// MPI derived datatypes (the subset MAD-MPI exercises, §3.4/§5.3).
//
// A Datatype is normalised at construction into a flat list of
// (byte_displacement, length) blocks for one element; adjacent blocks are
// coalesced. This single representation serves three consumers:
//   - MAD-MPI: converts blocks to engine Source/Dest layouts, one engine
//     chunk per block (the per-block send algorithm of §5.3);
//   - baselines: pack()/unpack() through a contiguous bounce buffer, the
//     documented MPICH behaviour;
//   - tests: structural equality and size/extent laws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nmad/core/layout.hpp"
#include "util/buffer.hpp"

namespace nmad::mpi {

class Datatype {
 public:
  struct Block {
    ptrdiff_t disp = 0;  // byte displacement from the element base
    size_t len = 0;      // contiguous bytes
  };

  // Predefined types.
  static Datatype byte_type();
  static Datatype char_type();
  static Datatype int_type();
  static Datatype float_type();
  static Datatype double_type();

  // Type constructors (mirroring MPI_Type_*).
  static Datatype contiguous(int count, const Datatype& old);
  static Datatype vector(int count, int blocklength, int stride,
                         const Datatype& old);
  static Datatype hvector(int count, int blocklength, ptrdiff_t stride_bytes,
                          const Datatype& old);
  static Datatype indexed(std::span<const int> blocklengths,
                          std::span<const int> displacements,
                          const Datatype& old);
  static Datatype hindexed(std::span<const int> blocklengths,
                           std::span<const ptrdiff_t> displacements_bytes,
                           const Datatype& old);
  static Datatype struct_type(std::span<const int> blocklengths,
                              std::span<const ptrdiff_t> displacements_bytes,
                              std::span<const Datatype> types);

  // Number of data bytes in one element (sum of block lengths).
  [[nodiscard]] size_t size() const { return size_; }
  // Span from the lowest to one past the highest addressed byte, i.e. the
  // stride between consecutive elements in a count > 1 operation.
  [[nodiscard]] ptrdiff_t extent() const { return extent_; }
  [[nodiscard]] bool is_contiguous() const;
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  // Engine layout for `count` elements starting at `buf`.
  [[nodiscard]] core::SourceLayout source_layout(const void* buf,
                                                 int count) const;
  [[nodiscard]] core::DestLayout dest_layout(void* buf, int count) const;

  // Contiguous pack/unpack (the baseline MPI implementations' path).
  void pack(const void* buf, int count, util::MutableBytes out) const;
  void unpack(util::ConstBytes in, void* buf, int count) const;

 private:
  Datatype(std::vector<Block> blocks, ptrdiff_t extent);

  static void append_coalesced(std::vector<Block>& blocks, ptrdiff_t disp,
                               size_t len);

  std::vector<Block> blocks_;  // ordered by construction, coalesced
  size_t size_ = 0;
  ptrdiff_t extent_ = 0;
};

}  // namespace nmad::mpi
