#include "madmpi/madmpi.hpp"

namespace nmad::mpi {

class MadMpiEndpoint::MadRequest final : public Request {
 public:
  MadRequest(core::Core& core, core::Request* inner,
             util::ByteBuffer packed = {})
      : core_(core), inner_(inner), packed_(std::move(packed)) {}
  ~MadRequest() override { core_.release(inner_); }

  [[nodiscard]] bool done() const override { return inner_->done(); }
  [[nodiscard]] util::Status status() const override {
    return inner_->status();
  }
  [[nodiscard]] size_t received_bytes() const override {
    if (inner_->kind() != core::Request::Kind::kRecv) return 0;
    return static_cast<const core::RecvRequest*>(inner_)->received_bytes();
  }

  [[nodiscard]] core::Request* inner() const { return inner_; }

 private:
  core::Core& core_;
  core::Request* inner_;
  util::ByteBuffer packed_;  // bounce for tiny-block datatype sends
};

namespace {

// Per-block submission pays a header and per-chunk costs per block; below
// this average block size a single packed copy is cheaper ([3]).
constexpr size_t kTinyBlockBytes = 512;
constexpr size_t kMinBlocksToPack = 8;

bool should_pack(const core::SourceLayout& src) {
  const size_t blocks = src.blocks().size();
  if (blocks < kMinBlocksToPack) return false;
  return src.total() / blocks < kTinyBlockBytes;
}

}  // namespace

MadMpiEndpoint::MadMpiEndpoint(simnet::SimWorld& world, core::Core& core,
                               int rank, int size,
                               std::vector<core::GateId> rank_gates)
    : Endpoint(world, rank, size),
      core_(core),
      rank_gates_(std::move(rank_gates)) {}

Request* MadMpiEndpoint::isend(const void* buf, int count,
                               const Datatype& type, int dest, int tag,
                               Comm comm) {
  NMAD_ASSERT(dest >= 0 && dest < size_ && dest != rank_);
  core::SourceLayout src = type.source_layout(buf, count);
  if (should_pack(src)) {
    // Many tiny blocks: one packed copy beats per-block headers. The wire
    // chunks carry logical offsets either way, so the receiver's layout
    // (packed or per-block) still matches.
    util::ByteBuffer packed;
    packed.resize(src.total());
    type.pack(buf, count, packed.view());
    core_.rt().cpu().charge_memcpy(packed.size());
    core::SendRequest* inner =
        core_.isend(rank_gates_[dest], fold_tag(comm, tag),
                    core::SourceLayout::contiguous(packed.view()));
    return new MadRequest(core_, inner, std::move(packed));
  }
  core::SendRequest* inner =
      core_.isend(rank_gates_[dest], fold_tag(comm, tag), src);
  return new MadRequest(core_, inner);
}

Request* MadMpiEndpoint::irecv(void* buf, int count, const Datatype& type,
                               int source, int tag, Comm comm) {
  NMAD_ASSERT(source >= 0 && source < size_ && source != rank_);
  core::RecvRequest* inner = core_.irecv(
      rank_gates_[source], fold_tag(comm, tag),
      type.dest_layout(buf, count));
  return new MadRequest(core_, inner);
}

ProbeStatus MadMpiEndpoint::iprobe(int source, int tag, Comm comm) {
  NMAD_ASSERT(source >= 0 && source < size_ && source != rank_);
  const core::Core::PeekResult peek =
      core_.peek_unexpected(rank_gates_[source], fold_tag(comm, tag));
  ProbeStatus status;
  status.matched = peek.matched;
  status.bytes = peek.total_bytes;
  return status;
}

void MadMpiEndpoint::free_request(Request* req) {
  delete static_cast<MadRequest*>(req);
}

bool MadMpiEndpoint::cancel(Request* req) {
  return core_.cancel(static_cast<MadRequest*>(req)->inner());
}

bool MadMpiEndpoint::set_deadline(Request* req, double timeout_us) {
  core_.set_deadline(static_cast<MadRequest*>(req)->inner(), timeout_us);
  return true;
}

util::Status MadMpiEndpoint::finalize(double deadline_us) {
  return core_.drain(deadline_us);
}

MadMpiWorld::MadMpiWorld(api::ClusterOptions options)
    : cluster_(std::move(options)) {
  const int size = static_cast<int>(cluster_.node_count());
  for (int rank = 0; rank < size; ++rank) {
    std::vector<core::GateId> gates(size, core::GateId{0});
    for (int peer = 0; peer < size; ++peer) {
      if (peer != rank) gates[peer] = cluster_.gate(rank, peer);
    }
    endpoints_.push_back(std::make_unique<MadMpiEndpoint>(
        cluster_.world(), cluster_.core(rank), rank, size,
        std::move(gates)));
  }
}

}  // namespace nmad::mpi
