// Split-phase collective operations built on the point-to-point layer.
//
// The paper's MAD-MPI stops at point-to-point; collectives are the first
// step of its stated future work ("port a full featured MPI
// implementation ... on top of NewMadeleine", §7). They are implemented
// here purely over Endpoint::isend/irecv, so the same algorithms run on
// MAD-MPI and on the baseline stacks — and on MAD-MPI their many small
// tree/ring messages become aggregation fodder for the optimizer.
//
// Because one OS process simulates every rank, collectives are
// split-phase: create the op on every rank first, then wait on any/all.
// Multi-stage algorithms (trees, dissemination rounds) advance themselves
// whenever any collective in the same simulated world is waited on.
//
//   auto b0 = ibarrier(stack.ep(0), kCommWorld);
//   auto b1 = ibarrier(stack.ep(1), kCommWorld);
//   b0->wait();  // drives both state machines
//   b1->wait();
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "madmpi/mpi.hpp"

namespace nmad::mpi {

// Element-wise combiner for reductions (MPI_Op). The engine moves bytes,
// not typed elements, so reductions carry their own combine function.
using ReduceFn =
    std::function<void(void* inout, const void* in, int count)>;

// Predefined combiners.
ReduceFn sum_int();
ReduceFn sum_double();
ReduceFn max_double();
ReduceFn min_double();

class CollectiveOp {
 public:
  virtual ~CollectiveOp();

  CollectiveOp(const CollectiveOp&) = delete;
  CollectiveOp& operator=(const CollectiveOp&) = delete;

  [[nodiscard]] bool done() const { return done_; }

  // Pumps the event loop (advancing every live collective in this world)
  // until this op completes.
  void wait();

 protected:
  explicit CollectiveOp(Endpoint& ep);

  // Advances the state machine: reap finished requests, post the next
  // stage, set done_ when finished. Must be idempotent per state.
  virtual void advance() = 0;

  // Stage helpers ----------------------------------------------------------
  void post_send(const void* buf, int count, const Datatype& type, int peer,
                 int stage);
  void post_recv(void* buf, int count, const Datatype& type, int peer,
                 int stage);
  [[nodiscard]] bool stage_requests_done() const;
  void reap_stage_requests();

  [[nodiscard]] int collective_tag(int stage) const;

  Endpoint& ep_;
  Comm comm_;
  uint32_t seq_ = 0;
  bool done_ = false;

 private:
  friend void advance_collectives(simnet::SimWorld* world);

  std::vector<Request*> stage_reqs_;
};

// Factories (all ranks must call each in the same order, per MPI rules).
std::unique_ptr<CollectiveOp> ibarrier(Endpoint& ep, Comm comm);
std::unique_ptr<CollectiveOp> ibcast(Endpoint& ep, void* buf, int count,
                                     const Datatype& type, int root,
                                     Comm comm);
std::unique_ptr<CollectiveOp> ireduce(Endpoint& ep, const void* send_buf,
                                      void* recv_buf, int count,
                                      const Datatype& type, ReduceFn op,
                                      int root, Comm comm);
std::unique_ptr<CollectiveOp> iallreduce(Endpoint& ep, const void* send_buf,
                                         void* recv_buf, int count,
                                         const Datatype& type, ReduceFn op,
                                         Comm comm);
std::unique_ptr<CollectiveOp> igather(Endpoint& ep, const void* send_buf,
                                      void* recv_buf, int count,
                                      const Datatype& type, int root,
                                      Comm comm);
std::unique_ptr<CollectiveOp> iscatter(Endpoint& ep, const void* send_buf,
                                       void* recv_buf, int count,
                                       const Datatype& type, int root,
                                       Comm comm);
std::unique_ptr<CollectiveOp> ialltoall(Endpoint& ep, const void* send_buf,
                                        void* recv_buf, int count,
                                        const Datatype& type, Comm comm);

}  // namespace nmad::mpi
