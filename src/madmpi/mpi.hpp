// The MPI-subset endpoint interface shared by MAD-MPI and the baseline
// implementations (MPICH-like, OpenMPI-like).
//
// MAD-MPI "is based on the point-to-point nonblocking posting (isend,
// irecv) and completion (wait, test) operations of MPI" (§3.4); the same
// four operations are the interface here so every benchmark runs the
// identical program against each stack.
//
// Because a whole cluster is simulated inside one OS process, programs are
// written split-phase: post the operations on every endpoint first, then
// wait. wait() pumps the shared event loop, which progresses all
// endpoints at once (there is no per-process blocking).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>

#include "madmpi/datatype.hpp"
#include "simnet/world.hpp"
#include "util/status.hpp"

namespace nmad::mpi {

// A communicator: rank topology is world-wide (all endpoints); the
// context id isolates tag spaces, exactly like MPI communicators.
struct Comm {
  uint32_t context = 0;

  friend bool operator==(const Comm& a, const Comm& b) {
    return a.context == b.context;
  }
};

inline constexpr Comm kCommWorld{0};

class Request {
 public:
  virtual ~Request() = default;
  [[nodiscard]] virtual bool done() const = 0;
  [[nodiscard]] virtual util::Status status() const = 0;
  // For receive requests: bytes received so far (MPI_Get_count analogue,
  // in bytes). Send requests report 0.
  [[nodiscard]] virtual size_t received_bytes() const { return 0; }
};

// MPI_Status-like result of a probe.
struct ProbeStatus {
  bool matched = false;
  size_t bytes = 0;  // message size, when known (eager or rendezvous RTS)
};

class Endpoint {
 public:
  Endpoint(simnet::SimWorld& world, int rank, int size)
      : world_(world), rank_(rank), size_(size) {}
  virtual ~Endpoint() = default;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  // Creates a new communicator context. All endpoints must perform their
  // comm_dup calls in the same order (as in MPI, where it is collective).
  [[nodiscard]] Comm comm_dup(Comm) { return Comm{++next_context_}; }

  // Sequence number for the next collective on `comm`. Collectives must
  // be issued in the same order on every rank (the MPI rule), which makes
  // these counters agree across endpoints and lets collective traffic use
  // disjoint reserved tags.
  [[nodiscard]] uint32_t next_collective_seq(Comm comm) {
    return collective_seq_[comm.context]++;
  }

  // Nonblocking point-to-point. The returned request is owned by the
  // endpoint; release it with free_request() after completion.
  virtual Request* isend(const void* buf, int count, const Datatype& type,
                         int dest, int tag, Comm comm) = 0;
  virtual Request* irecv(void* buf, int count, const Datatype& type,
                         int source, int tag, Comm comm) = 0;
  virtual void free_request(Request* req) = 0;

  // Nonblocking probe: has a message matching (source, tag, comm) already
  // arrived (fully or as a rendezvous announcement)? Never consumes it.
  [[nodiscard]] virtual ProbeStatus iprobe(int source, int tag,
                                           Comm comm) = 0;

  // MPI_Cancel analogue: best-effort withdrawal of a pending request.
  // True when the request was cancelled (its status becomes kCancelled);
  // false when it already completed or its bytes are beyond recall —
  // wait() for it normally in that case. Stacks without cancellation
  // support always refuse.
  virtual bool cancel(Request*) { return false; }
  // Arms a deadline on a pending request: if it is still incomplete after
  // `timeout_us` of virtual time, the stack cancels it with
  // kDeadlineExceeded. Returns false on stacks without deadline support.
  virtual bool set_deadline(Request*, double /*timeout_us*/) {
    return false;
  }

  // MPI_Finalize analogue: flush everything this endpoint still has in
  // flight — pending sends, retransmit windows, deferred acks — within
  // `deadline_us` of virtual time, instead of abandoning it. Returns
  // kDeadlineExceeded when the traffic cannot quiesce in time (e.g. a
  // sent message whose receive was never posted). The endpoint stays
  // usable afterwards; this is a drain, not a teardown. Stacks with no
  // engine-level buffering have nothing to flush and return ok.
  virtual util::Status finalize(double /*deadline_us*/ = 1.0e7) {
    return util::ok_status();
  }

  // Completion.
  [[nodiscard]] static bool test(const Request* req) { return req->done(); }
  void wait(Request* req);
  // Pumps the event loop until `req` completes or `timeout_us` of virtual
  // time elapses. Returns true when the request completed; false on
  // timeout (the request is left pending — pair with cancel() to give up
  // on it, or keep waiting). Quiescence also reports as a timeout: with
  // no events left, virtual time can never reach the deadline.
  bool wait_for(Request* req, double timeout_us);
  void wait_all(std::span<Request* const> reqs);
  // Waits for any one request to complete; returns its index.
  size_t wait_any(std::span<Request* const> reqs);
  // True when every request is complete (MPI_Testall).
  [[nodiscard]] static bool test_all(std::span<Request* const> reqs);

  // Blocking convenience wrappers (wait() on the nonblocking form). The
  // matching operation must already be posted or in flight — see the
  // split-phase note above.
  void send(const void* buf, int count, const Datatype& type, int dest,
            int tag, Comm comm);
  void recv(void* buf, int count, const Datatype& type, int source, int tag,
            Comm comm);
  // MPI_Sendrecv: both transfers in flight at once (safe against the
  // head-to-head exchange deadlock).
  void sendrecv(const void* send_buf, int send_count,
                const Datatype& send_type, int dest, int send_tag,
                void* recv_buf, int recv_count, const Datatype& recv_type,
                int source, int recv_tag, Comm comm);

  // Virtual wall-clock in seconds (MPI_Wtime).
  [[nodiscard]] double wtime() const { return world_.now() * 1e-6; }

  [[nodiscard]] simnet::SimWorld& world() { return world_; }

 protected:
  simnet::SimWorld& world_;
  int rank_;
  int size_;
  uint32_t next_context_ = 0;
  std::map<uint32_t, uint32_t> collective_seq_;
};

}  // namespace nmad::mpi
