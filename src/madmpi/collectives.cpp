#include "madmpi/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "util/assert.hpp"
#include "util/buffer.hpp"

namespace nmad::mpi {
namespace {

// Live collectives per simulated world: waiting on any one op must drive
// every rank's state machine, since all ranks share the event loop.
std::map<simnet::SimWorld*, std::vector<CollectiveOp*>>& registry() {
  static std::map<simnet::SimWorld*, std::vector<CollectiveOp*>> map;
  return map;
}

}  // namespace

void advance_collectives(simnet::SimWorld* world) {
  // One op completing can unblock another (e.g. allreduce's broadcast
  // waits on its reduction) without generating any fabric event, so loop
  // until a full pass completes nothing new.
  bool changed = true;
  while (changed) {
    changed = false;
    auto it = registry().find(world);
    if (it == registry().end()) return;
    // Snapshot: advance() never creates or destroys ops.
    const std::vector<CollectiveOp*> ops = it->second;
    for (CollectiveOp* op : ops) {
      if (op->done_) continue;
      op->advance();
      changed |= op->done_;
    }
  }
}

CollectiveOp::CollectiveOp(Endpoint& ep) : ep_(ep) {
  registry()[&ep.world()].push_back(this);
}

CollectiveOp::~CollectiveOp() {
  NMAD_ASSERT_MSG(stage_reqs_.empty(),
                  "collective destroyed with requests in flight");
  auto& ops = registry()[&ep_.world()];
  ops.erase(std::find(ops.begin(), ops.end(), this));
  if (ops.empty()) registry().erase(&ep_.world());
}

void CollectiveOp::wait() {
  simnet::SimWorld& world = ep_.world();
  advance_collectives(&world);
  const bool ok = world.run_until([&]() {
    advance_collectives(&world);
    return done_;
  });
  NMAD_ASSERT_MSG(ok, "collective deadlock: did every rank call it?");
}

int CollectiveOp::collective_tag(int stage) const {
  // Reserved tag space: bit 30 set, collective sequence, stage.
  return (1 << 30) | (static_cast<int>(seq_ & 0x3FFFu) << 8) |
         (stage & 0xFF);
}

void CollectiveOp::post_send(const void* buf, int count,
                             const Datatype& type, int peer, int stage) {
  stage_reqs_.push_back(
      ep_.isend(buf, count, type, peer, collective_tag(stage), comm_));
}

void CollectiveOp::post_recv(void* buf, int count, const Datatype& type,
                             int peer, int stage) {
  stage_reqs_.push_back(
      ep_.irecv(buf, count, type, peer, collective_tag(stage), comm_));
}

bool CollectiveOp::stage_requests_done() const {
  for (const Request* req : stage_reqs_) {
    if (!req->done()) return false;
  }
  return true;
}

void CollectiveOp::reap_stage_requests() {
  for (Request* req : stage_reqs_) ep_.free_request(req);
  stage_reqs_.clear();
}

// ---------------------------------------------------------------------------
// Barrier: dissemination, ceil(log2 P) rounds of zero-byte exchanges.
// ---------------------------------------------------------------------------
namespace {

class BarrierOp final : public CollectiveOp {
 public:
  BarrierOp(Endpoint& ep, Comm comm) : CollectiveOp(ep) {
    comm_ = comm;
    seq_ = ep.next_collective_seq(comm);
  }

 protected:
  void advance() override {
    const int size = ep_.size();
    while (true) {
      if (round_ >= 0) {
        if (!stage_requests_done()) return;
        reap_stage_requests();
      }
      ++round_;
      if ((1 << round_) >= size) {  // ceil(log2 size) rounds completed
        done_ = true;
        return;
      }
      const int dist = 1 << round_;
      const int to = (ep_.rank() + dist) % size;
      const int from = (ep_.rank() - dist + size) % size;
      post_send(nullptr, 0, Datatype::byte_type(), to, round_);
      post_recv(nullptr, 0, Datatype::byte_type(), from, round_);
    }
  }

 private:
  int round_ = -1;
};

}  // namespace

std::unique_ptr<CollectiveOp> ibarrier(Endpoint& ep, Comm comm) {
  return std::make_unique<BarrierOp>(ep, comm);
}

// ---------------------------------------------------------------------------
// Broadcast: binomial tree rooted at `root`.
// ---------------------------------------------------------------------------
namespace {

class BcastOp final : public CollectiveOp {
 public:
  BcastOp(Endpoint& ep, void* buf, int count, const Datatype& type,
          int root, Comm comm, std::function<bool()> wait_for,
          bool owns_seq)
      : CollectiveOp(ep),
        buf_(buf),
        count_(count),
        type_(type),
        root_(root),
        wait_for_(std::move(wait_for)) {
    comm_ = comm;
    if (owns_seq) seq_ = ep.next_collective_seq(comm);
  }

  void set_seq(uint32_t seq) { seq_ = seq; }

 protected:
  void advance() override {
    const int size = ep_.size();
    const int vrank = (ep_.rank() - root_ + size) % size;
    while (!done_) {
      if (phase_ == Phase::kStart) {
        if (wait_for_ && !wait_for_()) return;
        // Find the parent: clear the lowest set bit of vrank.
        int mask = 1;
        while (mask < size && (vrank & mask) == 0) mask <<= 1;
        parent_mask_ = mask;
        if (vrank != 0) {
          const int vparent = vrank & ~mask;
          post_recv(buf_, count_, type_, (vparent + root_) % size, 0);
          phase_ = Phase::kReceiving;
        } else {
          parent_mask_ = size;  // root sends over every mask below size
          phase_ = Phase::kSending;
          post_child_sends(vrank, size);
        }
        continue;
      }
      if (!stage_requests_done()) return;
      reap_stage_requests();
      if (phase_ == Phase::kReceiving) {
        phase_ = Phase::kSending;
        post_child_sends(vrank, size);
        continue;
      }
      done_ = true;  // kSending finished
    }
  }

 private:
  enum class Phase { kStart, kReceiving, kSending };

  void post_child_sends(int vrank, int size) {
    // Children are vrank + mask for masks below the parent bit.
    for (int mask = 1; mask < parent_mask_ && vrank + mask < size;
         mask <<= 1) {
      post_send(buf_, count_, type_, (vrank + mask + root_) % size, 0);
    }
  }

  void* buf_;
  int count_;
  Datatype type_;
  int root_;
  std::function<bool()> wait_for_;
  Phase phase_ = Phase::kStart;
  int parent_mask_ = 0;
};

}  // namespace

std::unique_ptr<CollectiveOp> ibcast(Endpoint& ep, void* buf, int count,
                                     const Datatype& type, int root,
                                     Comm comm) {
  return std::make_unique<BcastOp>(ep, buf, count, type, root, comm,
                                   nullptr, /*owns_seq=*/true);
}

// ---------------------------------------------------------------------------
// Reduce: binomial tree towards `root`, commutative combine.
// ---------------------------------------------------------------------------
namespace {

class ReduceOp final : public CollectiveOp {
 public:
  ReduceOp(Endpoint& ep, const void* send_buf, void* recv_buf, int count,
           const Datatype& type, ReduceFn op, int root, Comm comm)
      : CollectiveOp(ep),
        recv_buf_(recv_buf),
        count_(count),
        type_(type),
        op_(std::move(op)),
        root_(root) {
    NMAD_ASSERT_MSG(type.is_contiguous(),
                    "reduce requires a contiguous datatype");
    comm_ = comm;
    seq_ = ep.next_collective_seq(comm);
    // Accumulator starts as a copy of this rank's contribution.
    acc_.resize(type.size() * static_cast<size_t>(count));
    std::memcpy(acc_.data(), send_buf, acc_.size());
  }

  [[nodiscard]] const std::byte* result() const { return acc_.data(); }

 protected:
  void advance() override {
    const int size = ep_.size();
    const int vrank = (ep_.rank() - root_ + size) % size;
    while (!done_) {
      if (phase_ == Phase::kStart) {
        // Post receives from every child at once.
        int mask = 1;
        while (mask < size && (vrank & mask) == 0) {
          if (vrank + mask < size) {
            child_bufs_.emplace_back();
            child_bufs_.back().resize(acc_.size());
            post_recv(child_bufs_.back().view().data(), count_, type_,
                      (vrank + mask + root_) % size, 0);
          }
          mask <<= 1;
        }
        parent_mask_ = mask;
        phase_ = Phase::kReceiving;
        continue;
      }
      if (!stage_requests_done()) return;
      reap_stage_requests();
      if (phase_ == Phase::kReceiving) {
        for (const util::ByteBuffer& child : child_bufs_) {
          op_(acc_.data(), child.data(), count_);
        }
        child_bufs_.clear();
        if (vrank != 0) {
          const int vparent = vrank & ~parent_mask_;
          post_send(acc_.data(), count_, type_, (vparent + root_) % size,
                    0);
          phase_ = Phase::kSending;
          continue;
        }
        std::memcpy(recv_buf_, acc_.data(), acc_.size());
        done_ = true;
        continue;
      }
      done_ = true;  // kSending finished
    }
  }

 private:
  enum class Phase { kStart, kReceiving, kSending };

  void* recv_buf_;
  int count_;
  Datatype type_;
  ReduceFn op_;
  int root_;
  util::ByteBuffer acc_;
  std::vector<util::ByteBuffer> child_bufs_;
  Phase phase_ = Phase::kStart;
  int parent_mask_ = 0;
};

// Allreduce: reduce to rank 0, then broadcast from rank 0.
class AllreduceOp final : public CollectiveOp {
 public:
  AllreduceOp(Endpoint& ep, const void* send_buf, void* recv_buf, int count,
              const Datatype& type, ReduceFn op, Comm comm)
      : CollectiveOp(ep) {
    comm_ = comm;
    seq_ = ep.next_collective_seq(comm);
    if (ep.rank() != 0) {
      // Non-root ranks receive the broadcast straight into recv_buf; give
      // the reduce phase a scratch destination it never uses.
      scratch_.resize(type.size() * static_cast<size_t>(count));
    }
    reduce_ = std::make_unique<ReduceOp>(
        ep, send_buf, ep.rank() == 0 ? recv_buf : scratch_.view().data(),
        count, type, std::move(op), /*root=*/0, comm);
    auto* reduce_raw = reduce_.get();
    bcast_ = std::make_unique<BcastOp>(
        ep, recv_buf, count, type, /*root=*/0, comm,
        [reduce_raw]() { return reduce_raw->done(); }, /*owns_seq=*/false);
    bcast_->set_seq(seq_ | 0x2000u);  // disjoint from the reduce's tags
  }

 protected:
  void advance() override { done_ = bcast_->done(); }

 private:
  util::ByteBuffer scratch_;
  std::unique_ptr<ReduceOp> reduce_;
  std::unique_ptr<BcastOp> bcast_;
};

}  // namespace

std::unique_ptr<CollectiveOp> ireduce(Endpoint& ep, const void* send_buf,
                                      void* recv_buf, int count,
                                      const Datatype& type, ReduceFn op,
                                      int root, Comm comm) {
  return std::make_unique<ReduceOp>(ep, send_buf, recv_buf, count, type,
                                    std::move(op), root, comm);
}

std::unique_ptr<CollectiveOp> iallreduce(Endpoint& ep, const void* send_buf,
                                         void* recv_buf, int count,
                                         const Datatype& type, ReduceFn op,
                                         Comm comm) {
  return std::make_unique<AllreduceOp>(ep, send_buf, recv_buf, count, type,
                                       std::move(op), comm);
}

// ---------------------------------------------------------------------------
// Gather / Scatter / Alltoall: flat single-stage patterns.
// ---------------------------------------------------------------------------
namespace {

class FlatOp final : public CollectiveOp {
 public:
  enum class Kind { kGather, kScatter, kAlltoall };

  FlatOp(Endpoint& ep, Kind kind, const void* send_buf, void* recv_buf,
         int count, const Datatype& type, int root, Comm comm)
      : CollectiveOp(ep) {
    NMAD_ASSERT_MSG(type.is_contiguous(),
                    "flat collectives require contiguous datatypes");
    comm_ = comm;
    seq_ = ep.next_collective_seq(comm);

    const int rank = ep.rank();
    const int size = ep.size();
    const size_t slot = type.size() * static_cast<size_t>(count);
    const auto* send_bytes = static_cast<const std::byte*>(send_buf);
    auto* recv_bytes = static_cast<std::byte*>(recv_buf);

    switch (kind) {
      case Kind::kGather:
        if (rank == root) {
          for (int r = 0; r < size; ++r) {
            if (r == rank) {
              std::memcpy(recv_bytes + r * slot, send_bytes, slot);
            } else {
              post_recv(recv_bytes + r * slot, count, type, r, 0);
            }
          }
        } else {
          post_send(send_bytes, count, type, root, 0);
        }
        break;
      case Kind::kScatter:
        if (rank == root) {
          for (int r = 0; r < size; ++r) {
            if (r == rank) {
              std::memcpy(recv_bytes, send_bytes + r * slot, slot);
            } else {
              post_send(send_bytes + r * slot, count, type, r, 0);
            }
          }
        } else {
          post_recv(recv_bytes, count, type, root, 0);
        }
        break;
      case Kind::kAlltoall:
        for (int r = 0; r < size; ++r) {
          if (r == rank) {
            std::memcpy(recv_bytes + r * slot, send_bytes + r * slot, slot);
            continue;
          }
          post_recv(recv_bytes + r * slot, count, type, r, 0);
          post_send(send_bytes + r * slot, count, type, r, 0);
        }
        break;
    }
  }

 protected:
  void advance() override {
    if (!stage_requests_done()) return;
    reap_stage_requests();
    done_ = true;
  }
};

}  // namespace

std::unique_ptr<CollectiveOp> igather(Endpoint& ep, const void* send_buf,
                                      void* recv_buf, int count,
                                      const Datatype& type, int root,
                                      Comm comm) {
  return std::make_unique<FlatOp>(ep, FlatOp::Kind::kGather, send_buf,
                                  recv_buf, count, type, root, comm);
}

std::unique_ptr<CollectiveOp> iscatter(Endpoint& ep, const void* send_buf,
                                       void* recv_buf, int count,
                                       const Datatype& type, int root,
                                       Comm comm) {
  return std::make_unique<FlatOp>(ep, FlatOp::Kind::kScatter, send_buf,
                                  recv_buf, count, type, root, comm);
}

std::unique_ptr<CollectiveOp> ialltoall(Endpoint& ep, const void* send_buf,
                                        void* recv_buf, int count,
                                        const Datatype& type, Comm comm) {
  return std::make_unique<FlatOp>(ep, FlatOp::Kind::kAlltoall, send_buf,
                                  recv_buf, count, type, /*root=*/0, comm);
}

// ---------------------------------------------------------------------------
// Predefined combiners.
// ---------------------------------------------------------------------------

ReduceFn sum_int() {
  return [](void* inout, const void* in, int count) {
    auto* a = static_cast<int*>(inout);
    const auto* b = static_cast<const int*>(in);
    for (int i = 0; i < count; ++i) a[i] += b[i];
  };
}

ReduceFn sum_double() {
  return [](void* inout, const void* in, int count) {
    auto* a = static_cast<double*>(inout);
    const auto* b = static_cast<const double*>(in);
    for (int i = 0; i < count; ++i) a[i] += b[i];
  };
}

ReduceFn max_double() {
  return [](void* inout, const void* in, int count) {
    auto* a = static_cast<double*>(inout);
    const auto* b = static_cast<const double*>(in);
    for (int i = 0; i < count; ++i) a[i] = std::max(a[i], b[i]);
  };
}

ReduceFn min_double() {
  return [](void* inout, const void* in, int count) {
    auto* a = static_cast<double*>(inout);
    const auto* b = static_cast<const double*>(in);
    for (int i = 0; i < count; ++i) a[i] = std::min(a[i], b[i]);
  };
}

}  // namespace nmad::mpi
