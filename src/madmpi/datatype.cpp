#include "madmpi/datatype.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"

namespace nmad::mpi {

Datatype::Datatype(std::vector<Block> blocks, ptrdiff_t extent)
    : blocks_(std::move(blocks)), extent_(extent) {
  for (const Block& b : blocks_) size_ += b.len;
  NMAD_ASSERT_MSG(extent_ >= 0, "negative extents are not supported");
}

void Datatype::append_coalesced(std::vector<Block>& blocks, ptrdiff_t disp,
                                size_t len) {
  if (len == 0) return;
  if (!blocks.empty() &&
      blocks.back().disp + static_cast<ptrdiff_t>(blocks.back().len) ==
          disp) {
    blocks.back().len += len;
  } else {
    blocks.push_back(Block{disp, len});
  }
}

bool Datatype::is_contiguous() const {
  return blocks_.size() <= 1 &&
         (blocks_.empty() ||
          (blocks_[0].disp == 0 &&
           blocks_[0].len == static_cast<size_t>(extent_)));
}

// ---------------------------------------------------------------------------
// Predefined types
// ---------------------------------------------------------------------------

namespace {
Datatype basic(size_t n) {
  return Datatype::contiguous(static_cast<int>(n), Datatype::byte_type());
}
}  // namespace

Datatype Datatype::byte_type() { return Datatype({Block{0, 1}}, 1); }
Datatype Datatype::char_type() { return byte_type(); }
Datatype Datatype::int_type() { return basic(sizeof(int)); }
Datatype Datatype::float_type() { return basic(sizeof(float)); }
Datatype Datatype::double_type() { return basic(sizeof(double)); }

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

Datatype Datatype::contiguous(int count, const Datatype& old) {
  NMAD_ASSERT(count >= 0);
  return hvector(count, 1, old.extent(), old);
}

Datatype Datatype::vector(int count, int blocklength, int stride,
                          const Datatype& old) {
  return hvector(count, blocklength, stride * old.extent(), old);
}

Datatype Datatype::hvector(int count, int blocklength,
                           ptrdiff_t stride_bytes, const Datatype& old) {
  NMAD_ASSERT(count >= 0 && blocklength >= 0);
  std::vector<Block> blocks;
  ptrdiff_t max_end = 0;
  for (int i = 0; i < count; ++i) {
    const ptrdiff_t base = i * stride_bytes;
    for (int j = 0; j < blocklength; ++j) {
      const ptrdiff_t element = base + j * old.extent();
      for (const Block& b : old.blocks()) {
        append_coalesced(blocks, element + b.disp, b.len);
      }
    }
    max_end = std::max(max_end,
                       base + blocklength * old.extent());
  }
  return Datatype(std::move(blocks), max_end);
}

Datatype Datatype::indexed(std::span<const int> blocklengths,
                           std::span<const int> displacements,
                           const Datatype& old) {
  NMAD_ASSERT(blocklengths.size() == displacements.size());
  std::vector<ptrdiff_t> bytes(displacements.size());
  for (size_t i = 0; i < displacements.size(); ++i) {
    bytes[i] = displacements[i] * old.extent();
  }
  return hindexed(blocklengths, bytes, old);
}

Datatype Datatype::hindexed(std::span<const int> blocklengths,
                            std::span<const ptrdiff_t> displacements_bytes,
                            const Datatype& old) {
  NMAD_ASSERT(blocklengths.size() == displacements_bytes.size());
  std::vector<Block> blocks;
  ptrdiff_t max_end = 0;
  for (size_t i = 0; i < blocklengths.size(); ++i) {
    NMAD_ASSERT(blocklengths[i] >= 0);
    for (int j = 0; j < blocklengths[i]; ++j) {
      const ptrdiff_t element = displacements_bytes[i] + j * old.extent();
      for (const Block& b : old.blocks()) {
        append_coalesced(blocks, element + b.disp, b.len);
      }
    }
    max_end = std::max(
        max_end, displacements_bytes[i] + blocklengths[i] * old.extent());
  }
  return Datatype(std::move(blocks), max_end);
}

Datatype Datatype::struct_type(
    std::span<const int> blocklengths,
    std::span<const ptrdiff_t> displacements_bytes,
    std::span<const Datatype> types) {
  NMAD_ASSERT(blocklengths.size() == displacements_bytes.size() &&
              blocklengths.size() == types.size());
  std::vector<Block> blocks;
  ptrdiff_t max_end = 0;
  for (size_t i = 0; i < blocklengths.size(); ++i) {
    for (int j = 0; j < blocklengths[i]; ++j) {
      const ptrdiff_t element =
          displacements_bytes[i] + j * types[i].extent();
      for (const Block& b : types[i].blocks()) {
        append_coalesced(blocks, element + b.disp, b.len);
      }
    }
    max_end = std::max(max_end, displacements_bytes[i] +
                                    blocklengths[i] * types[i].extent());
  }
  return Datatype(std::move(blocks), max_end);
}

// ---------------------------------------------------------------------------
// Layout / pack / unpack
// ---------------------------------------------------------------------------

core::SourceLayout Datatype::source_layout(const void* buf,
                                           int count) const {
  const auto* base = static_cast<const std::byte*>(buf);
  std::vector<core::SourceLayout::Block> out;
  out.reserve(blocks_.size() * static_cast<size_t>(count));
  size_t logical = 0;
  for (int i = 0; i < count; ++i) {
    const ptrdiff_t element = i * extent_;
    for (const Block& b : blocks_) {
      // Coalesce across elements when memory stays adjacent (contiguous
      // types collapse to one engine block).
      if (!out.empty() &&
          out.back().memory.data() + out.back().memory.size() ==
              base + element + b.disp) {
        out.back().memory = util::ConstBytes{
            out.back().memory.data(), out.back().memory.size() + b.len};
      } else {
        out.push_back(core::SourceLayout::Block{
            logical, util::ConstBytes{base + element + b.disp, b.len}});
      }
      logical += b.len;
    }
  }
  return core::SourceLayout::scattered(std::move(out));
}

core::DestLayout Datatype::dest_layout(void* buf, int count) const {
  auto* base = static_cast<std::byte*>(buf);
  std::vector<core::DestLayout::Block> out;
  out.reserve(blocks_.size() * static_cast<size_t>(count));
  size_t logical = 0;
  for (int i = 0; i < count; ++i) {
    const ptrdiff_t element = i * extent_;
    for (const Block& b : blocks_) {
      if (!out.empty() &&
          out.back().memory.data() + out.back().memory.size() ==
              base + element + b.disp) {
        out.back().memory = util::MutableBytes{
            out.back().memory.data(), out.back().memory.size() + b.len};
      } else {
        out.push_back(core::DestLayout::Block{
            logical, util::MutableBytes{base + element + b.disp, b.len}});
      }
      logical += b.len;
    }
  }
  return core::DestLayout::scattered(std::move(out));
}

void Datatype::pack(const void* buf, int count,
                    util::MutableBytes out) const {
  NMAD_ASSERT(out.size() >= size_ * static_cast<size_t>(count));
  const auto* base = static_cast<const std::byte*>(buf);
  size_t pos = 0;
  for (int i = 0; i < count; ++i) {
    const ptrdiff_t element = i * extent_;
    for (const Block& b : blocks_) {
      std::memcpy(out.data() + pos, base + element + b.disp, b.len);
      pos += b.len;
    }
  }
}

void Datatype::unpack(util::ConstBytes in, void* buf, int count) const {
  NMAD_ASSERT(in.size() >= size_ * static_cast<size_t>(count));
  auto* base = static_cast<std::byte*>(buf);
  size_t pos = 0;
  for (int i = 0; i < count; ++i) {
    const ptrdiff_t element = i * extent_;
    for (const Block& b : blocks_) {
      std::memcpy(base + element + b.disp, in.data() + pos, b.len);
      pos += b.len;
    }
  }
}

}  // namespace nmad::mpi
