#include "madmpi/mpi.hpp"

#include "util/assert.hpp"

namespace nmad::mpi {

void Endpoint::wait(Request* req) {
  NMAD_ASSERT(req != nullptr);
  const bool ok = world_.run_until([req]() { return req->done(); });
  NMAD_ASSERT_MSG(ok,
                  "simulation quiescent with a pending MPI request "
                  "(missing matching operation?)");
}

bool Endpoint::wait_for(Request* req, double timeout_us) {
  NMAD_ASSERT(req != nullptr);
  const double deadline = world_.now() + timeout_us;
  while (!req->done()) {
    if (world_.now() >= deadline) return false;
    if (!world_.run_one()) return false;
  }
  return true;
}

void Endpoint::wait_all(std::span<Request* const> reqs) {
  for (Request* req : reqs) wait(req);
}

size_t Endpoint::wait_any(std::span<Request* const> reqs) {
  NMAD_ASSERT(!reqs.empty());
  size_t winner = reqs.size();
  const bool ok = world_.run_until([&]() {
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i]->done()) {
        winner = i;
        return true;
      }
    }
    return false;
  });
  NMAD_ASSERT_MSG(ok, "simulation quiescent with no request completing");
  return winner;
}

bool Endpoint::test_all(std::span<Request* const> reqs) {
  for (const Request* req : reqs) {
    if (!req->done()) return false;
  }
  return true;
}

void Endpoint::send(const void* buf, int count, const Datatype& type,
                    int dest, int tag, Comm comm) {
  Request* req = isend(buf, count, type, dest, tag, comm);
  wait(req);
  free_request(req);
}

void Endpoint::recv(void* buf, int count, const Datatype& type, int source,
                    int tag, Comm comm) {
  Request* req = irecv(buf, count, type, source, tag, comm);
  wait(req);
  free_request(req);
}

void Endpoint::sendrecv(const void* send_buf, int send_count,
                        const Datatype& send_type, int dest, int send_tag,
                        void* recv_buf, int recv_count,
                        const Datatype& recv_type, int source, int recv_tag,
                        Comm comm) {
  Request* r = irecv(recv_buf, recv_count, recv_type, source, recv_tag,
                     comm);
  Request* s = isend(send_buf, send_count, send_type, dest, send_tag, comm);
  wait(r);
  wait(s);
  free_request(r);
  free_request(s);
}

}  // namespace nmad::mpi
