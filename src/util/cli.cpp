#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/units.hpp"

namespace nmad::util {

void CliFlags::define(const std::string& name,
                      const std::string& default_value,
                      const std::string& help) {
  flags_[name] = Flag{default_value, help, /*is_bool=*/false};
}

void CliFlags::define_bool(const std::string& name, bool default_value,
                           const std::string& help) {
  flags_[name] = Flag{default_value ? "true" : "false", help,
                      /*is_bool=*/true};
}

Status CliFlags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const size_t eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      if (arg == "help") {
        print_help(argv[0]);
        std::exit(0);
      }
      return invalid_argument("unknown flag --" + arg);
    }
    if (it->second.is_bool) {
      it->second.value = has_value ? value : "true";
    } else if (has_value) {
      it->second.value = value;
    } else if (i + 1 < argc) {
      it->second.value = argv[++i];
    } else {
      return invalid_argument("flag --" + arg + " expects a value");
    }
  }
  return ok_status();
}

std::string CliFlags::get(const std::string& name) const {
  auto it = flags_.find(name);
  NMAD_ASSERT_MSG(it != flags_.end(), "undeclared flag queried");
  return it->second.value;
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

int64_t CliFlags::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

uint64_t CliFlags::get_size(const std::string& name) const {
  uint64_t out = 0;
  NMAD_ASSERT_MSG(parse_size(get(name), &out),
                  "flag value is not a valid size");
  return out;
}

void CliFlags::print_help(const char* program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program);
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-20s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.value.c_str());
  }
}

}  // namespace nmad::util
