// Streaming statistics and sample collections for benchmark reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nmad::util {

// Welford-style running mean/variance plus min/max; O(1) memory.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void reset() { *this = RunningStats{}; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Retains all samples; supports exact percentiles. Used for latency series.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  // Exact percentile by linear interpolation; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void ensure_sorted() const;
};

// Streaming quantile digest: a log-linear (HDR-style) histogram with 32
// sub-buckets per octave, so any quantile is answered in O(buckets) with
// bounded relative error (≤ ~3 %) and O(1) memory per sample. Values are
// non-negative (latencies in µs); min/max/mean are tracked exactly, so
// max() and quantiles at the extremes are never approximated away.
// Digests merge bucket-wise, which is how per-gate tails roll up into an
// engine-wide tail.
class QuantileDigest {
 public:
  void add(double x);
  void merge(const QuantileDigest& other);

  [[nodiscard]] size_t count() const { return count_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  // Quantile by cumulative bucket walk; q in [0, 1]. Empty digest → 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double p999() const { return quantile(0.999); }

  void reset() { *this = QuantileDigest{}; }

 private:
  // 32 sub-buckets per octave; ticks are value µs × 1024 (sub-ns floor).
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr double kTicksPerUnit = 1024.0;
  static constexpr size_t kBuckets =
      static_cast<size_t>((64 - kSubBits) * kSubBuckets);

  static size_t bucket_of(uint64_t ticks);
  static double bucket_mid(size_t idx);

  std::vector<uint64_t> buckets_;  // lazily sized, kBuckets max
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Power-of-two bucketed histogram for message-size distributions.
class SizeHistogram {
 public:
  void add(uint64_t value);

  [[nodiscard]] size_t count() const { return total_; }
  // Bucket i counts values in [2^i, 2^(i+1)) with bucket 0 holding 0 and 1.
  [[nodiscard]] uint64_t bucket(size_t i) const;
  [[nodiscard]] size_t bucket_count() const { return buckets_.size(); }

 private:
  std::vector<uint64_t> buckets_;
  size_t total_ = 0;
};

}  // namespace nmad::util
