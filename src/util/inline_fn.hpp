// Small-buffer-optimized move-only callable, the event-queue hot path's
// replacement for std::function<void()>.
//
// Every simulated frame delivery, tx-done and timer is one heap-allocated
// std::function with type-erased dispatch; at millions of events per
// second the allocator dominates. InlineFunction stores captures up to
// `Capacity` bytes inline (the engine's hot lambdas are measured under 64
// bytes) and falls back to the heap only for oversized captures — counted
// globally so the allocation-regression tests can assert the hot path
// never falls back.
//
// The signature is a template parameter (`InlineFunction<C, R(Args...)>`)
// so the driver seam's typed handoffs (rx packets, bulk deposits) share
// the same allocation-free machinery; `InlineFunction<C>` stays the
// historical void() shorthand used by the event queue.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace nmad::util {

// Number of InlineFunction constructions that spilled to the heap since
// process start. Relaxed atomic: wall-clock runs construct callables from
// several pump threads, and the regression tests only compare snapshots
// taken at quiescent points.
inline std::atomic<uint64_t> g_inline_fn_heap_allocs{0};
[[nodiscard]] inline uint64_t inline_fn_heap_allocs() {
  return g_inline_fn_heap_allocs.load(std::memory_order_relaxed);
}

template <size_t Capacity, typename Sig = void()>
class InlineFunction;

template <size_t Capacity, typename R, typename... Args>
class InlineFunction<Capacity, R(Args...)> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      g_inline_fn_heap_allocs.fetch_add(1, std::memory_order_relaxed);
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args...);
    // Move-constructs dst from src and ends src's ownership; after
    // relocate only dst needs destroy().
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s, Args... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s, Args... args) -> R {
        return (**reinterpret_cast<Fn**>(s))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* s) { delete *reinterpret_cast<Fn**>(s); },
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[Capacity];
};

}  // namespace nmad::util
