#include "util/rng.hpp"

#include "util/assert.hpp"

namespace nmad::util {
namespace {

inline uint64_t rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: the recommended seeder for xoshiro state.
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // All-zero state would lock the generator; splitmix64 cannot produce it
  // for four consecutive outputs, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  NMAD_ASSERT(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::next_range(uint64_t lo, uint64_t hi) {
  NMAD_ASSERT(lo <= hi);
  if (lo == 0 && hi == UINT64_MAX) return next_u64();
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

}  // namespace nmad::util
