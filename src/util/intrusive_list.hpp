// Intrusive doubly-linked list.
//
// The optimization window and driver queues move packets between lists on
// every progress step; an intrusive list makes insertion/removal O(1) with
// no allocation, which is the standard idiom for communication runtimes.
//
// Usage:
//   struct Packet { nmad::util::ListHook hook; ... };
//   IntrusiveList<Packet, &Packet::hook> pending;
#pragma once

#include <cstddef>

#include "util/assert.hpp"

namespace nmad::util {

struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  [[nodiscard]] bool is_linked() const { return prev != nullptr; }

  // Detach from whatever list this hook is on. Safe to call when unlinked.
  void unlink() {
    if (!is_linked()) return;
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
  }
};

template <typename T, ListHook T::* Hook>
class IntrusiveList {
 public:
  IntrusiveList() { reset_sentinel(); }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  IntrusiveList(IntrusiveList&& other) noexcept { steal_from(other); }
  IntrusiveList& operator=(IntrusiveList&& other) noexcept {
    if (this != &other) {
      clear();
      steal_from(other);
    }
    return *this;
  }

  ~IntrusiveList() { clear(); }

  [[nodiscard]] bool empty() const { return head_.next == &head_; }
  [[nodiscard]] size_t size() const { return size_; }

  void push_back(T& item) { insert_before(head_, hook_of(item)); }
  void push_front(T& item) { insert_before(*head_.next, hook_of(item)); }

  // Inserts `item` immediately before `pos` (which must be on this list).
  void insert_before(T& pos, T& item) {
    insert_before(hook_of(pos), hook_of(item));
  }

  [[nodiscard]] T& front() {
    NMAD_ASSERT(!empty());
    return *owner_of(head_.next);
  }
  [[nodiscard]] T& back() {
    NMAD_ASSERT(!empty());
    return *owner_of(head_.prev);
  }

  T& pop_front() {
    T& item = front();
    remove(item);
    return item;
  }
  T& pop_back() {
    T& item = back();
    remove(item);
    return item;
  }

  void remove(T& item) {
    ListHook& hook = hook_of(item);
    NMAD_DEBUG_ASSERT(hook.is_linked());
    hook.unlink();
    --size_;
  }

  // Unlinks every element (does not destroy them; the list never owns).
  void clear() {
    while (!empty()) pop_front();
  }

  class iterator {
   public:
    explicit iterator(ListHook* at) : at_(at) {}
    T& operator*() const { return *owner_of(at_); }
    T* operator->() const { return owner_of(at_); }
    iterator& operator++() {
      at_ = at_->next;
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.at_ == b.at_;
    }

   private:
    ListHook* at_;
  };

  class const_iterator {
   public:
    explicit const_iterator(const ListHook* at) : at_(at) {}
    const T& operator*() const { return *owner_of(const_cast<ListHook*>(at_)); }
    const T* operator->() const {
      return owner_of(const_cast<ListHook*>(at_));
    }
    const_iterator& operator++() {
      at_ = at_->next;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.at_ == b.at_;
    }

   private:
    const ListHook* at_;
  };

  iterator begin() { return iterator{head_.next}; }
  iterator end() { return iterator{&head_}; }
  const_iterator begin() const { return const_iterator{head_.next}; }
  const_iterator end() const { return const_iterator{&head_}; }

  // Returns the element after `item`, or nullptr if it is the last.
  T* next_of(T& item) {
    ListHook* n = hook_of(item).next;
    return n == &head_ ? nullptr : owner_of(n);
  }

 private:
  static ListHook& hook_of(T& item) { return item.*Hook; }

  static T* owner_of(ListHook* hook) {
    // Recover the owning object from its hook member.
    const auto offset = reinterpret_cast<size_t>(
        &(static_cast<T*>(nullptr)->*Hook));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(hook) - offset);
  }

  void insert_before(ListHook& pos, ListHook& hook) {
    NMAD_DEBUG_ASSERT(!hook.is_linked());
    hook.prev = pos.prev;
    hook.next = &pos;
    pos.prev->next = &hook;
    pos.prev = &hook;
    ++size_;
  }

  void reset_sentinel() {
    head_.prev = &head_;
    head_.next = &head_;
    size_ = 0;
  }

  void steal_from(IntrusiveList& other) {
    if (other.empty()) {
      reset_sentinel();
      return;
    }
    head_.next = other.head_.next;
    head_.prev = other.head_.prev;
    head_.next->prev = &head_;
    head_.prev->next = &head_;
    size_ = other.size_;
    other.reset_sentinel();
  }

  ListHook head_;  // sentinel; prev == tail, next == first
  size_t size_ = 0;
};

}  // namespace nmad::util
