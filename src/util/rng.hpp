// Deterministic PRNG (xoshiro256**) for workload generators and tests.
//
// std::mt19937_64 would also work but is large and slower to seed; the
// xoshiro family is the common choice in HPC workload generators and keeps
// simulation runs bit-reproducible across platforms.
#pragma once

#include <cstdint>

namespace nmad::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9Bull) { reseed(seed); }

  void reseed(uint64_t seed);

  uint64_t next_u64();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t next_below(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t next_range(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  bool next_bool(double p_true = 0.5);

 private:
  uint64_t state_[4];
};

}  // namespace nmad::util
