// Little-endian wire encode/decode helpers.
//
// Track-0 packets carry a real byte-serialised header format (the paper's
// §5.1 "extra header ... for allowing the reordering and the multiplexing
// of the packets"); these helpers keep the encoding explicit and
// endian-stable.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/buffer.hpp"

namespace nmad::util {

class WireWriter {
 public:
  explicit WireWriter(ByteBuffer& out) : out_(out) {}

  void u8(uint8_t v) { out_.append(&v, 1); }
  void u16(uint16_t v) { put_le(v); }
  void u32(uint32_t v) { put_le(v); }
  void u64(uint64_t v) { put_le(v); }
  void bytes(ConstBytes view) { out_.append(view); }
  void bytes(const void* data, size_t len) { out_.append(data, len); }

  [[nodiscard]] size_t written() const { return out_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    std::byte raw[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      raw[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
    }
    out_.append(raw, sizeof(T));
  }

  ByteBuffer& out_;
};

// Incremental FNV-1a 32-bit hash — the integrity check used by the
// optional wire checksum (fast, endian-stable, good enough to catch
// protocol bugs; not cryptographic).
class Fnv32 {
 public:
  void update(ConstBytes data) {
    for (std::byte b : data) {
      state_ ^= std::to_integer<uint32_t>(b);
      state_ *= 16777619u;
    }
  }
  [[nodiscard]] uint32_t digest() const { return state_; }

  static uint32_t of(ConstBytes data) {
    Fnv32 h;
    h.update(data);
    return h.digest();
  }

 private:
  uint32_t state_ = 2166136261u;
};

class WireReader {
 public:
  explicit WireReader(ConstBytes in) : in_(in) {}

  [[nodiscard]] size_t remaining() const { return in_.size() - offset_; }
  [[nodiscard]] size_t offset() const { return offset_; }
  [[nodiscard]] bool ok() const { return !failed_; }

  uint8_t u8() { return get_le<uint8_t>(); }
  uint16_t u16() { return get_le<uint16_t>(); }
  uint32_t u32() { return get_le<uint32_t>(); }
  uint64_t u64() { return get_le<uint64_t>(); }

  // Returns a view of the next `len` bytes without copying.
  ConstBytes bytes(size_t len) {
    if (failed_ || remaining() < len) {
      failed_ = true;
      return {};
    }
    ConstBytes view = in_.subspan(offset_, len);
    offset_ += len;
    return view;
  }

 private:
  template <typename T>
  T get_le() {
    if (failed_ || remaining() < sizeof(T)) {
      failed_ = true;
      return T{};
    }
    T v{};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(
          v | (static_cast<T>(std::to_integer<uint8_t>(in_[offset_ + i]))
               << (8 * i)));
    }
    offset_ += sizeof(T);
    return v;
  }

  ConstBytes in_;
  size_t offset_ = 0;
  bool failed_ = false;
};

}  // namespace nmad::util
