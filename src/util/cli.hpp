// Tiny command-line flag parser for bench/example binaries.
//
// Supports --name=value, --name value, and boolean --name. Unknown flags
// are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace nmad::util {

class CliFlags {
 public:
  // Declare flags with defaults before parsing.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);
  void define_bool(const std::string& name, bool default_value,
                   const std::string& help);

  [[nodiscard]] Status parse(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  // Parses the flag value with parse_size ("256K" → 262144).
  [[nodiscard]] uint64_t get_size(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_help(const char* program) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
    bool is_bool = false;
  };

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace nmad::util
