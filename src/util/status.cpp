#include "util/status.hpp"

namespace nmad::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kTruncated: return "truncated";
    case StatusCode::kWouldBlock: return "would-block";
    case StatusCode::kClosed: return "closed";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kPeerDead: return "peer-dead";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
Status out_of_range(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
Status unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
Status truncated(std::string msg) {
  return {StatusCode::kTruncated, std::move(msg)};
}
Status would_block() { return Status{StatusCode::kWouldBlock}; }
Status closed(std::string msg) {
  return {StatusCode::kClosed, std::move(msg)};
}
Status cancelled(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
Status deadline_exceeded(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}
Status peer_dead(std::string msg) {
  return {StatusCode::kPeerDead, std::move(msg)};
}

}  // namespace nmad::util
