#include "util/assert.hpp"

#include <cstdlib>

namespace nmad::util {

void assert_fail(const char* expr, const char* file, int line,
                 const char* msg) {
  std::fprintf(stderr, "[nmad] assertion failed: %s at %s:%d%s%s\n", expr,
               file, line, msg ? " — " : "", msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace nmad::util
