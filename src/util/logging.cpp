#include "util/logging.hpp"

#include <cstdio>
#include <vector>

namespace nmad::util {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::logf(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlogf(level, fmt, args);
  va_end(args);
}

void Logger::vlogf(LogLevel level, const char* fmt, va_list args) {
  if (!enabled(level)) return;  // the macros pre-check; direct calls don't
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed < 0) return;

  std::string body(static_cast<size_t>(needed) + 1, '\0');
  std::vsnprintf(body.data(), body.size(), fmt, args);
  body.resize(static_cast<size_t>(needed));

  if (sink_) {
    sink_(level, body);
  } else {
    std::fprintf(stderr, "[nmad %s] %s\n", log_level_name(level),
                 body.c_str());
  }
}

}  // namespace nmad::util
