// Bounded lock-free rings for the in-process shared-memory driver.
//
// Two shapes, both power-of-two capacity with monotonically increasing
// cursors (indices are masked on access, so the 64-bit counters never
// wrap in practice) and cache-line padding between producer- and
// consumer-owned fields so the two sides never false-share:
//
//  - SpscRing<T>: single producer, single consumer. The producer owns
//    `head_`, the consumer owns `tail_`; each publishes its cursor with
//    release order and reads the other side with acquire order — the
//    classic Lamport ring. Besides value push/pop it exposes an in-place
//    claim/publish + front/pop API so large slots (wire frames) are
//    written directly in the ring with no intermediate copy.
//
//  - MpscRing<T>: many producers, one consumer (Vyukov bounded queue with
//    per-slot sequence numbers). Producers race on a fetch-add cursor;
//    each slot's sequence tells the consumer when the payload write is
//    actually complete, so a slow producer never exposes a torn slot.
//
// Neither ring allocates after construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

#include "util/assert.hpp"

namespace nmad::util {

// Pinned rather than std::hardware_destructive_interference_size: the
// library value is ABI-fragile across -mtune settings (GCC warns on any
// use) and every target this builds for pads to 64.
inline constexpr size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  // `capacity` must be a power of two (masked indexing).
  explicit SpscRing(size_t capacity)
      : mask_(capacity - 1), slots_(new T[capacity]) {
    NMAD_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                    "ring capacity must be a power of two");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] size_t capacity() const { return mask_ + 1; }

  // Producer side -----------------------------------------------------

  // Slot for the next element, or nullptr when full. Write the payload
  // in place, then publish().
  [[nodiscard]] T* claim() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) > mask_) return nullptr;
    return &slots_[head & mask_];
  }

  void publish() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  bool try_push(T&& value) {
    T* slot = claim();
    if (slot == nullptr) return false;
    *slot = std::move(value);
    publish();
    return true;
  }

  // Consumer side -----------------------------------------------------

  // Oldest unconsumed element, or nullptr when empty. The slot stays
  // owned by the ring until pop_front().
  [[nodiscard]] T* front() {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return nullptr;
    return &slots_[tail & mask_];
  }

  void pop_front() {
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  bool try_pop(T& out) {
    T* slot = front();
    if (slot == nullptr) return false;
    out = std::move(*slot);
    pop_front();
    return true;
  }

  // Racy size estimate, for stats/backpressure heuristics only.
  [[nodiscard]] size_t size_approx() const {
    return static_cast<size_t>(head_.load(std::memory_order_acquire) -
                               tail_.load(std::memory_order_acquire));
  }

 private:
  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};  // producer
  alignas(kCacheLineBytes) std::atomic<uint64_t> tail_{0};  // consumer
  alignas(kCacheLineBytes) const size_t mask_;
  std::unique_ptr<T[]> slots_;
};

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(size_t capacity)
      : mask_(capacity - 1), slots_(new Slot[capacity]) {
    NMAD_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                    "ring capacity must be a power of two");
    for (size_t i = 0; i <= mask_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] size_t capacity() const { return mask_ + 1; }

  // Any thread. False when the ring is full.
  bool try_push(T&& value) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const int64_t diff = static_cast<int64_t>(seq) -
                           static_cast<int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          // Publishing seq = pos + 1 hands the slot to the consumer.
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: `pos` was reloaded, retry with the new position.
      } else if (diff < 0) {
        return false;  // full: the consumer has not freed this slot yet
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  // Consumer thread only. False when empty (or the next producer is
  // mid-write; the element surfaces once its slot sequence publishes).
  bool try_pop(T& out) {
    Slot& slot = slots_[tail_ & mask_];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(tail_ + 1) < 0) {
      return false;
    }
    out = std::move(slot.value);
    // Freeing the slot for the producer one lap ahead.
    slot.seq.store(tail_ + mask_ + 1, std::memory_order_release);
    ++tail_;
    return true;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};  // producers
  alignas(kCacheLineBytes) uint64_t tail_ = 0;              // consumer
  alignas(kCacheLineBytes) const size_t mask_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace nmad::util
