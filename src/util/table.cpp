#include "util/table.hpp"

#include <algorithm>
#include <cctype>

#include "util/assert.hpp"

namespace nmad::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%' &&
        c != 'K' && c != 'M' && c != 'G') {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-' ||
         s[0] == '+' || s[0] == '.';
}

}  // namespace

void Table::add_row(std::vector<std::string> cells) {
  NMAD_ASSERT_MSG(cells.size() == header_.size(),
                  "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  std::vector<bool> numeric(header_.size(), true);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!looks_numeric(row[c])) numeric[c] = false;
    }
  }

  auto print_cell = [&](const std::string& text, size_t c, bool right) {
    const int w = static_cast<int>(widths[c]);
    if (right) {
      std::fprintf(out, "%*s", w, text.c_str());
    } else {
      std::fprintf(out, "%-*s", w, text.c_str());
    }
    std::fputs(c + 1 == header_.size() ? "\n" : "  ", out);
  };

  for (size_t c = 0; c < header_.size(); ++c) {
    print_cell(header_[c], c, /*right=*/false);
  }
  for (size_t c = 0; c < header_.size(); ++c) {
    std::string rule(widths[c], '-');
    print_cell(rule, c, /*right=*/false);
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      print_cell(row[c], c, numeric[c]);
    }
  }
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fputs(row[c].c_str(), out);
      std::fputc(c + 1 == row.size() ? '\n' : ',', out);
    }
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace nmad::util
