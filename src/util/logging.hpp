// Minimal leveled logger.
//
// The engine logs through a process-global logger with a settable level and
// sink, so tests can capture output and benchmarks can silence it. Printf
// formatting is used instead of iostreams to keep call sites cheap and to
// avoid locale surprises.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace nmad::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  // Process-global logger used by the NMAD_LOG_* macros.
  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  // Replaces the output sink; pass nullptr to restore stderr output.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void logf(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
  void vlogf(LogLevel level, const char* fmt, va_list args);

 private:
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

}  // namespace nmad::util

#define NMAD_LOG(level, ...)                                            \
  do {                                                                  \
    auto& nmad_logger_ = ::nmad::util::Logger::global();                \
    if (nmad_logger_.enabled(level)) {                                  \
      nmad_logger_.logf(level, __VA_ARGS__);                            \
    }                                                                   \
  } while (0)

#define NMAD_LOG_TRACE(...) NMAD_LOG(::nmad::util::LogLevel::kTrace, __VA_ARGS__)
#define NMAD_LOG_DEBUG(...) NMAD_LOG(::nmad::util::LogLevel::kDebug, __VA_ARGS__)
#define NMAD_LOG_INFO(...) NMAD_LOG(::nmad::util::LogLevel::kInfo, __VA_ARGS__)
#define NMAD_LOG_WARN(...) NMAD_LOG(::nmad::util::LogLevel::kWarn, __VA_ARGS__)
#define NMAD_LOG_ERROR(...) NMAD_LOG(::nmad::util::LogLevel::kError, __VA_ARGS__)
