// Assertion macros for invariant checking.
//
// NMAD_ASSERT is compiled in all build types: the engine is a scheduling
// core where silent state corruption is far worse than the cost of a
// predictable branch. NMAD_DEBUG_ASSERT compiles out in NDEBUG builds and
// is meant for hot-path checks.
#pragma once

#include <cstdio>

namespace nmad::util {

// Prints a diagnostic and aborts. Out-of-line so the macro stays tiny.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg);

}  // namespace nmad::util

#define NMAD_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) [[unlikely]] {                                            \
      ::nmad::util::assert_fail(#expr, __FILE__, __LINE__, nullptr);       \
    }                                                                      \
  } while (0)

#define NMAD_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) [[unlikely]] {                                            \
      ::nmad::util::assert_fail(#expr, __FILE__, __LINE__, (msg));         \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define NMAD_DEBUG_ASSERT(expr) ((void)0)
#else
#define NMAD_DEBUG_ASSERT(expr) NMAD_ASSERT(expr)
#endif

#define NMAD_UNREACHABLE(msg)                                              \
  ::nmad::util::assert_fail("unreachable", __FILE__, __LINE__, (msg))
