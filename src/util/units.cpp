#include "util/units.hpp"

#include <cctype>
#include <cstdio>

namespace nmad::util {

bool parse_size(const std::string& text, uint64_t* out) {
  if (text.empty() || out == nullptr) return false;
  uint64_t value = 0;
  size_t i = 0;
  bool any_digit = false;
  for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]));
       ++i) {
    value = value * 10 + static_cast<uint64_t>(text[i] - '0');
    any_digit = true;
  }
  if (!any_digit) return false;
  uint64_t mult = 1;
  if (i < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[i]))) {
      case 'K': mult = 1024ull; break;
      case 'M': mult = 1024ull * 1024; break;
      case 'G': mult = 1024ull * 1024 * 1024; break;
      default: return false;
    }
    ++i;
    // Allow a trailing "B" / "iB".
    if (i < text.size() &&
        std::toupper(static_cast<unsigned char>(text[i])) == 'I') {
      ++i;
    }
    if (i < text.size() &&
        std::toupper(static_cast<unsigned char>(text[i])) == 'B') {
      ++i;
    }
  }
  if (i != text.size()) return false;
  *out = value * mult;
  return true;
}

std::string format_size(uint64_t bytes) {
  const uint64_t kK = 1024ull;
  const uint64_t kM = kK * 1024;
  const uint64_t kG = kM * 1024;
  char buf[32];
  if (bytes >= kG && bytes % kG == 0) {
    std::snprintf(buf, sizeof(buf), "%lluG",
                  static_cast<unsigned long long>(bytes / kG));
  } else if (bytes >= kM && bytes % kM == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes / kM));
  } else if (bytes >= kK && bytes % kK == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes / kK));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::vector<uint64_t> doubling_sizes(uint64_t lo, uint64_t hi) {
  std::vector<uint64_t> sizes;
  for (uint64_t s = lo; s <= hi && s != 0; s *= 2) sizes.push_back(s);
  return sizes;
}

}  // namespace nmad::util
