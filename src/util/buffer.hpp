// Byte buffers and scatter/gather segment vectors.
//
// The engine manipulates application data as (pointer, length) views; data
// is only copied when a driver lacks gather/scatter or when a baseline
// protocol deliberately packs. ByteBuffer is the owning flat buffer used
// for wire packets; SegmentVec is the iovec-style view list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace nmad::util {

using ConstBytes = std::span<const std::byte>;
using MutableBytes = std::span<std::byte>;

inline ConstBytes as_bytes_view(const void* data, size_t len) {
  return {static_cast<const std::byte*>(data), len};
}
inline MutableBytes as_writable_bytes(void* data, size_t len) {
  return {static_cast<std::byte*>(data), len};
}

// One scatter/gather element.
struct Segment {
  const std::byte* data = nullptr;
  size_t len = 0;

  Segment() = default;
  Segment(const void* d, size_t l)
      : data(static_cast<const std::byte*>(d)), len(l) {}
  explicit Segment(ConstBytes view) : data(view.data()), len(view.size()) {}

  [[nodiscard]] ConstBytes view() const { return {data, len}; }
};

// iovec-style gather list with total-length bookkeeping.
class SegmentVec {
 public:
  SegmentVec() = default;

  void add(const void* data, size_t len) {
    if (len == 0 && data == nullptr) return;
    segments_.emplace_back(data, len);
    total_ += len;
  }
  void add(ConstBytes view) { add(view.data(), view.size()); }
  void add(const Segment& seg) { add(seg.data, seg.len); }

  void clear() {
    segments_.clear();
    total_ = 0;
  }

  [[nodiscard]] size_t count() const { return segments_.size(); }
  [[nodiscard]] size_t total_bytes() const { return total_; }
  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] const Segment& operator[](size_t i) const {
    NMAD_DEBUG_ASSERT(i < segments_.size());
    return segments_[i];
  }

  [[nodiscard]] auto begin() const { return segments_.begin(); }
  [[nodiscard]] auto end() const { return segments_.end(); }

  // Copies every segment back-to-back into `out` (which must be large
  // enough) and returns the number of bytes written.
  size_t gather_into(MutableBytes out) const;

 private:
  std::vector<Segment> segments_;
  size_t total_ = 0;
};

// Owning, growable flat byte buffer used to assemble wire packets.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t size) : bytes_(size) {}

  [[nodiscard]] size_t size() const { return bytes_.size(); }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }

  [[nodiscard]] std::byte* data() { return bytes_.data(); }
  [[nodiscard]] const std::byte* data() const { return bytes_.data(); }

  [[nodiscard]] MutableBytes view() { return {bytes_.data(), bytes_.size()}; }
  [[nodiscard]] ConstBytes view() const {
    return {bytes_.data(), bytes_.size()};
  }

  void resize(size_t size) { bytes_.resize(size); }
  void clear() { bytes_.clear(); }

  void append(ConstBytes chunk) {
    bytes_.insert(bytes_.end(), chunk.begin(), chunk.end());
  }
  void append(const void* data, size_t len) {
    append(as_bytes_view(data, len));
  }

 private:
  std::vector<std::byte> bytes_;
};

// Copies `src` into `dst`; both spans must have the same length.
void copy_bytes(MutableBytes dst, ConstBytes src);

// Fills a buffer with a deterministic byte pattern (for tests/benches) and
// verifies it; seed distinguishes independent buffers.
void fill_pattern(MutableBytes out, uint64_t seed);
[[nodiscard]] bool check_pattern(ConstBytes in, uint64_t seed);

}  // namespace nmad::util
