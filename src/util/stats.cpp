#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace nmad::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  NMAD_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  NMAD_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  NMAD_ASSERT(!samples_.empty());
  NMAD_ASSERT(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void SizeHistogram::add(uint64_t value) {
  const size_t bucket = value < 2 ? 0 : std::bit_width(value) - 1;
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  ++total_;
}

uint64_t SizeHistogram::bucket(size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0;
}

}  // namespace nmad::util
