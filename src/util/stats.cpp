#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace nmad::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  NMAD_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  NMAD_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  NMAD_ASSERT(!samples_.empty());
  NMAD_ASSERT(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

size_t QuantileDigest::bucket_of(uint64_t ticks) {
  if (ticks < kSubBuckets) return static_cast<size_t>(ticks);
  const int octave = std::bit_width(ticks) - 1;  // >= kSubBits
  const uint64_t sub = (ticks >> (octave - kSubBits)) & (kSubBuckets - 1);
  return static_cast<size_t>(octave - kSubBits + 1) * kSubBuckets +
         static_cast<size_t>(sub);
}

double QuantileDigest::bucket_mid(size_t idx) {
  if (idx < kSubBuckets) {
    return static_cast<double>(idx) / kTicksPerUnit;
  }
  const int octave =
      static_cast<int>(idx / kSubBuckets) + kSubBits - 1;
  const uint64_t sub = idx % kSubBuckets;
  const uint64_t lo = (uint64_t{1} << octave) |
                      (sub << (octave - kSubBits));
  const uint64_t width = uint64_t{1} << (octave - kSubBits);
  return (static_cast<double>(lo) + static_cast<double>(width) / 2.0) /
         kTicksPerUnit;
}

void QuantileDigest::add(double x) {
  if (x < 0.0) x = 0.0;
  const auto ticks = static_cast<uint64_t>(x * kTicksPerUnit);
  const size_t idx = bucket_of(ticks);
  if (buckets_.size() <= idx) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  sum_ += x;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
}

void QuantileDigest::merge(const QuantileDigest& other) {
  if (other.count_ == 0) return;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  sum_ += other.sum_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double QuantileDigest::quantile(double q) const {
  if (count_ == 0) return 0.0;
  NMAD_ASSERT(q >= 0.0 && q <= 1.0);
  // Nearest-rank over the cumulative counts, clamped to the exact
  // observed range so q=0 / q=1 report true min/max.
  const auto rank = static_cast<uint64_t>(
      q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      return std::min(std::max(bucket_mid(i), min_), max_);
    }
  }
  return max_;
}

void SizeHistogram::add(uint64_t value) {
  const size_t bucket = value < 2 ? 0 : std::bit_width(value) - 1;
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  ++total_;
}

uint64_t SizeHistogram::bucket(size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0;
}

}  // namespace nmad::util
