// Size/time formatting and parsing helpers shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nmad::util {

// "4", "1K", "256K", "2M" → bytes (K/M/G are binary multiples). Returns
// false on malformed input.
bool parse_size(const std::string& text, uint64_t* out);

// 4 → "4", 1024 → "1K", 2097152 → "2M"; falls back to plain digits when the
// value is not an exact multiple.
std::string format_size(uint64_t bytes);

// 12.345 → "12.35" (fixed, `digits` decimals).
std::string format_fixed(double value, int digits = 2);

// Doubling sweep [lo, hi] inclusive, e.g. 4 → 8 → ... → 2M.
std::vector<uint64_t> doubling_sizes(uint64_t lo, uint64_t hi);

// Transfer time in µs of `bytes` at `mega_bytes_per_second` (decimal
// megabytes, as NIC datasheets quote: 1 MB/s == 1 byte/µs). Runtime-
// agnostic twin of the simulator's wire_time — strategy code estimates
// wire occupancy from driver caps without depending on simnet.
inline constexpr double wire_time_us(double bytes,
                                     double mega_bytes_per_second) {
  return bytes / mega_bytes_per_second;
}

}  // namespace nmad::util
