// ASCII chart renderer for the figure-reproduction benches.
//
// Renders multiple series on a log-log grid in plain text, mirroring the
// paper's gnuplot figures closely enough to eyeball who-wins and
// crossover points straight from the terminal (`--plot` on the fig
// benches).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nmad::util {

class AsciiPlot {
 public:
  // `width`/`height` are the plot area in characters (axes excluded).
  AsciiPlot(std::string title, size_t width = 64, size_t height = 20)
      : title_(std::move(title)), width_(width), height_(height) {}

  // Adds a named series; `marker` is the character plotted at each point.
  // Points must have strictly positive coordinates (log scale).
  void add_series(const std::string& name, char marker,
                  std::vector<std::pair<double, double>> points);

  // Renders to `out`: title, plot area with log₂-spaced gridline labels on
  // both axes, and a legend.
  void render(std::FILE* out = stdout) const;

 private:
  struct Series {
    std::string name;
    char marker;
    std::vector<std::pair<double, double>> points;
  };

  std::string title_;
  size_t width_;
  size_t height_;
  std::vector<Series> series_;
};

}  // namespace nmad::util
