// Fixed-type object pool with freelist reuse.
//
// Packet wrappers and requests are allocated and released at very high
// rates on the progress path; the pool amortises allocation by recycling
// slots in chunk-allocated slabs. Objects are constructed on acquire and
// destroyed on release, so no stale state leaks between uses.
#pragma once

#include <cstddef>
#include <cstdio>
#include <typeinfo>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace nmad::util {

template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t slab_objects = 64)
      : slab_objects_(slab_objects == 0 ? 1 : slab_objects) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() {
    NMAD_ASSERT_MSG(live_ == 0, "ObjectPool destroyed with live objects");
  }

  template <typename... Args>
  T* acquire(Args&&... args) {
    if (free_.empty()) grow();
    void* slot = free_.back();
    free_.pop_back();
    ++live_;
    return ::new (slot) T(std::forward<Args>(args)...);
  }

  void release(T* object) {
    NMAD_ASSERT(object != nullptr);
    if (live_ == 0) {
      std::fprintf(stderr, "[pool] over-release of %s\n", typeid(T).name());
    }
    object->~T();
    free_.push_back(object);
    NMAD_ASSERT(live_ > 0);
    --live_;
  }

  [[nodiscard]] size_t live() const { return live_; }
  [[nodiscard]] size_t capacity() const {
    return slabs_.size() * slab_objects_;
  }
  // Number of slab allocations since construction; flat across a
  // steady-state phase means acquire() never touched the heap.
  [[nodiscard]] size_t grows() const { return slabs_.size(); }

 private:
  using Slot = std::aligned_storage_t<sizeof(T), alignof(T)>;

  void grow() {
    auto slab = std::make_unique<Slot[]>(slab_objects_);
    for (size_t i = 0; i < slab_objects_; ++i) {
      free_.push_back(&slab[i]);
    }
    slabs_.push_back(std::move(slab));
  }

  size_t slab_objects_;
  size_t live_ = 0;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<void*> free_;
};

}  // namespace nmad::util
