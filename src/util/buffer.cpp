#include "util/buffer.hpp"

namespace nmad::util {

size_t SegmentVec::gather_into(MutableBytes out) const {
  NMAD_ASSERT_MSG(out.size() >= total_, "gather target too small");
  size_t offset = 0;
  for (const Segment& seg : segments_) {
    if (seg.len == 0) continue;
    std::memcpy(out.data() + offset, seg.data, seg.len);
    offset += seg.len;
  }
  return offset;
}

void copy_bytes(MutableBytes dst, ConstBytes src) {
  NMAD_ASSERT(dst.size() == src.size());
  if (src.empty()) return;
  std::memcpy(dst.data(), src.data(), src.size());
}

void fill_pattern(MutableBytes out, uint64_t seed) {
  uint64_t state = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  for (size_t i = 0; i < out.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<std::byte>((state >> 33) & 0xFF);
  }
}

bool check_pattern(ConstBytes in, uint64_t seed) {
  uint64_t state = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  for (size_t i = 0; i < in.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    if (in[i] != static_cast<std::byte>((state >> 33) & 0xFF)) return false;
  }
  return true;
}

}  // namespace nmad::util
