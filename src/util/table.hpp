// Aligned ASCII table / CSV writer for benchmark output.
//
// Every bench binary prints one table per paper figure; keeping the
// formatting in one place makes the harness output uniform and lets
// EXPERIMENTS.md quote it directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nmad::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells);

  // Pretty-prints with per-column alignment (numbers right, text left).
  void print(std::FILE* out = stdout) const;

  // Comma-separated output for downstream plotting.
  void print_csv(std::FILE* out) const;

  [[nodiscard]] size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(size_t i) const {
    return rows_[i];
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nmad::util
