// Lightweight status codes and an Expected<T> result type.
//
// The engine avoids exceptions on communication paths (they make progress
// loops and C-style driver callbacks brittle); fallible operations return
// Status or Expected<T> instead, and callers must check them.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace nmad::util {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kTruncated,       // receive buffer smaller than the incoming message
  kWouldBlock,      // operation cannot make progress right now
  kClosed,          // endpoint / driver already shut down
  kCancelled,       // request withdrawn by the application (MPI_Cancel)
  kDeadlineExceeded,  // request deadline expired before completion
  kPeerDead,          // the remote peer was declared dead (node crash)
};

// Human-readable name of a status code ("ok", "invalid-argument", ...).
const char* status_code_name(StatusCode code);

// A status code plus an optional context message. Cheap to copy when ok
// (the common case stores no string).
class [[nodiscard]] Status {
 public:
  Status() = default;
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  // Full human-readable rendering, e.g. "invalid-argument: tag too wide".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status ok_status() { return Status::ok(); }

// Shorthand constructors mirroring absl-style helpers.
Status invalid_argument(std::string msg);
Status not_found(std::string msg);
Status already_exists(std::string msg);
Status out_of_range(std::string msg);
Status resource_exhausted(std::string msg);
Status failed_precondition(std::string msg);
Status unimplemented(std::string msg);
Status internal_error(std::string msg);
Status truncated(std::string msg);
Status would_block();
Status closed(std::string msg);
Status cancelled(std::string msg);
Status deadline_exceeded(std::string msg);
Status peer_dead(std::string msg);

// Minimal expected/result type: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}                // NOLINT
  Expected(Status status) : state_(std::move(status)) {          // NOLINT
    NMAD_ASSERT_MSG(!std::get<Status>(state_).is_ok(),
                    "Expected<T> built from an ok Status");
  }

  [[nodiscard]] bool has_value() const {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    NMAD_ASSERT_MSG(has_value(), "value() on errored Expected");
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    NMAD_ASSERT_MSG(has_value(), "value() on errored Expected");
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& take() && {
    NMAD_ASSERT_MSG(has_value(), "take() on errored Expected");
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] Status status() const {
    if (has_value()) return Status::ok();
    return std::get<Status>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace nmad::util

// Propagate a non-ok Status from an expression, absl-style.
#define NMAD_RETURN_IF_ERROR(expr)                        \
  do {                                                    \
    ::nmad::util::Status nmad_status_ = (expr);           \
    if (!nmad_status_.is_ok()) return nmad_status_;       \
  } while (0)
