#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace nmad::util {

void AsciiPlot::add_series(const std::string& name, char marker,
                           std::vector<std::pair<double, double>> points) {
  for (const auto& [x, y] : points) {
    NMAD_ASSERT_MSG(x > 0.0 && y > 0.0,
                    "log-log plot needs positive coordinates");
  }
  series_.push_back(Series{name, marker, std::move(points)});
}

void AsciiPlot::render(std::FILE* out) const {
  if (series_.empty()) {
    std::fprintf(out, "%s: (no data)\n", title_.c_str());
    return;
  }
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
  }
  // Pad the y range slightly so extreme points stay inside the frame.
  const double lx0 = std::log2(min_x), lx1 = std::log2(max_x);
  double ly0 = std::log2(min_y), ly1 = std::log2(max_y);
  if (ly1 - ly0 < 1e-9) {
    ly0 -= 0.5;
    ly1 += 0.5;
  }
  ly0 -= (ly1 - ly0) * 0.05;
  ly1 += (ly1 - ly0) * 0.05;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  auto to_col = [&](double x) {
    const double f = (std::log2(x) - lx0) / std::max(lx1 - lx0, 1e-9);
    return std::min(width_ - 1,
                    static_cast<size_t>(f * static_cast<double>(width_ - 1) +
                                        0.5));
  };
  auto to_row = [&](double y) {
    const double f = (std::log2(y) - ly0) / (ly1 - ly0);
    const auto from_bottom =
        static_cast<size_t>(f * static_cast<double>(height_ - 1) + 0.5);
    return height_ - 1 - std::min(height_ - 1, from_bottom);
  };

  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      char& cell = grid[to_row(y)][to_col(x)];
      // Overlapping series show '+' so collisions stay visible.
      cell = (cell == ' ' || cell == s.marker) ? s.marker : '+';
    }
  }

  std::fprintf(out, "%s\n", title_.c_str());
  for (size_t r = 0; r < height_; ++r) {
    // Label every fourth row with its y value.
    if (r % 4 == 0 || r == height_ - 1) {
      const double f =
          static_cast<double>(height_ - 1 - r) / (height_ - 1);
      const double y = std::exp2(ly0 + f * (ly1 - ly0));
      std::fprintf(out, "%9.1f |%s\n", y, grid[r].c_str());
    } else {
      std::fprintf(out, "%9s |%s\n", "", grid[r].c_str());
    }
  }
  std::fprintf(out, "%9s +%s\n", "", std::string(width_, '-').c_str());
  // X labels: min, middle, max.
  const std::string lo = format_size(static_cast<uint64_t>(min_x));
  const std::string mid = format_size(
      static_cast<uint64_t>(std::exp2((lx0 + lx1) / 2.0)));
  const std::string hi = format_size(static_cast<uint64_t>(max_x));
  std::fprintf(out, "%9s  %-*s%s%*s\n", "",
               static_cast<int>(width_ / 2 - mid.size() / 2), lo.c_str(),
               mid.c_str(),
               static_cast<int>(width_ - width_ / 2 - mid.size() +
                                mid.size() / 2 - hi.size() + 1),
               hi.c_str());
  std::fprintf(out, "%9s  legend:", "");
  for (const Series& s : series_) {
    std::fprintf(out, "  %c=%s", s.marker, s.name.c_str());
  }
  std::fprintf(out, "\n");
}

}  // namespace nmad::util
