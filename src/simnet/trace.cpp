#include "simnet/trace.hpp"

namespace nmad::simnet {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFrameTx: return "frame-tx";
    case TraceKind::kFrameRx: return "frame-rx";
    case TraceKind::kBulkTx: return "bulk-tx";
    case TraceKind::kBulkRx: return "bulk-rx";
    case TraceKind::kUser: return "user";
  }
  return "?";
}

void TraceLog::record(SimTime at, TraceKind kind, uint32_t node,
                      uint32_t rail, uint64_t bytes, std::string note) {
  events_.push_back(
      TraceEvent{at, kind, node, rail, bytes, std::move(note)});
}

size_t TraceLog::count(TraceKind kind, int node) const {
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind != kind) continue;
    if (node >= 0 && e.node != static_cast<uint32_t>(node)) continue;
    ++n;
  }
  return n;
}

void TraceLog::dump(std::FILE* out) const {
  for (const TraceEvent& e : events_) {
    std::fprintf(out, "%12.3f µs  node%u rail%u  %-9s %8llu B  %s\n", e.at,
                 e.node, e.rail, trace_kind_name(e.kind),
                 static_cast<unsigned long long>(e.bytes), e.note.c_str());
  }
}

}  // namespace nmad::simnet
