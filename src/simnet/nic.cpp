#include "simnet/nic.hpp"

#include <algorithm>

#include "simnet/world.hpp"
#include "util/logging.hpp"

namespace nmad::simnet {

void BulkSink::deposit(size_t offset, util::ConstBytes data) {
  NMAD_ASSERT_MSG(offset + data.size() <= region_.size(),
                  "bulk deposit outside sink region");
  util::copy_bytes(region_.subspan(offset, data.size()), data);

  // Merge [offset, offset + size) into the covered-interval set so that
  // retransmitted slices never double-count towards completion.
  size_t begin = offset;
  size_t end = offset + data.size();
  auto it = covered_.upper_bound(begin);
  if (it != covered_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = covered_.erase(prev);
    }
  }
  while (it != covered_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = covered_.erase(it);
  }
  covered_.emplace(begin, end);
  received_ = 0;
  for (const auto& [b, e] : covered_) received_ += e - b;
  NMAD_ASSERT_MSG(received_ <= expected_, "bulk sink overfilled");

  if (on_deposit_) on_deposit_(offset, data.size());
  if (received_ == expected_ && on_complete_) {
    // Move out first: the callback commonly frees the sink.
    auto fn = std::move(on_complete_);
    on_complete_ = nullptr;
    fn();
  }
}

bool SimNic::tx_idle() const { return tx_free_ <= world_.now(); }

bool SimNic::apply_faults(SimNic* dest, SimTime arrival,
                          util::ByteBuffer* frame, bool bulk) {
  const FaultProfile& fault = profile_.fault;
  uint64_t& dropped =
      bulk ? counters_.bulk_dropped : counters_.frames_dropped;
  // Blackouts silence both ends: the sender's DMA still completes (the
  // engine sees tx-done and keeps cycling) but nothing reaches the wire,
  // and a dark receiver never hears an arriving frame.
  if (in_blackout(world_.now()) || dest->in_blackout(arrival)) {
    ++dropped;
    return true;
  }
  const double drop_prob = bulk ? fault.bulk_drop_prob : fault.frame_drop_prob;
  if (drop_prob > 0.0 && rng_.next_bool(drop_prob)) {
    ++dropped;
    return true;
  }
  // Gray-failure flaky window: an extra, intermittent drop draw on top
  // of the persistent dice. Only rolled inside a configured window so an
  // existing seed replays identically when the gray model is off.
  if (fault.flaky_drop_prob > 0.0 && in_flaky(world_.now()) &&
      rng_.next_bool(fault.flaky_drop_prob)) {
    ++dropped;
    return true;
  }
  // Track-1 transfers are drop-only: RDMA hardware checksums its payload,
  // so corruption surfaces as a lost slice. Track-0 frames take a single
  // flipped bit that the engine's wire checksum must catch.
  if (!bulk && fault.bit_flip_prob > 0.0 && frame->size() > 0 &&
      rng_.next_bool(fault.bit_flip_prob)) {
    const uint64_t bit = rng_.next_below(frame->size() * 8);
    frame->data()[bit / 8] ^=
        static_cast<std::byte>(uint8_t{1} << (bit % 8));
    ++counters_.frames_corrupted;
  }
  return false;
}

SimTime SimNic::launch(size_t bytes, size_t segment_count,
                       double extra_setup_us, TxDoneFn on_tx_done) {
  NMAD_ASSERT_MSG(segment_count == 0 ||
                      segment_count <= profile_.gather_max_segments,
                  "gather list longer than NIC supports");
  const SimTime start = tx_free_ > world_.now() ? tx_free_ : world_.now();
  const double gather_cost =
      segment_count > 1
          ? static_cast<double>(segment_count - 1) * profile_.gather_segment_us
          : 0.0;
  // A throttled (gray) rail serializes frames against its reduced
  // effective bandwidth: everything still flows, just slower.
  const SimTime occupancy =
      profile_.tx_post_us + extra_setup_us + gather_cost +
      wire_time(static_cast<double>(bytes),
                profile_.bandwidth_mbps * profile_.fault.bandwidth_throttle);
  tx_free_ = start + occupancy;
  counters_.tx_busy_us += occupancy;
  counters_.bytes_sent += bytes;
  if (on_tx_done) {
    world_.at(tx_free_, std::move(on_tx_done));
  }
  // Head of the frame leaves after setup; last byte arrives a full
  // serialization later plus the wire latency.
  return start + occupancy + profile_.latency_us;
}

void SimNic::send_frame(NodeId dst, util::ConstBytes bytes,
                        size_t segment_count, TxDoneFn on_tx_done) {
  SimNic* dest = peer(dst);
  NMAD_ASSERT_MSG(dest != nullptr, "no peer NIC on this rail");
  ++counters_.frames_sent;
  if (trace_ != nullptr) {
    trace_->record(world_.now(), TraceKind::kFrameTx, node_, rail_,
                   bytes.size());
  }
  SimTime arrival =
      launch(bytes.size(), segment_count, 0.0, std::move(on_tx_done));

  RxFrame frame;
  frame.src_node = node_;
  frame.rail = rail_;
  frame.bytes.append(bytes);
  // The fault dice live on the sender, but the receiver's blackouts
  // (node-crash windows land only on the crashed node's NICs) must drop
  // inbound frames too — consult both profiles before skipping the check.
  if ((profile_.fault.any() || dest->profile_.fault.any()) &&
      apply_faults(dest, arrival, &frame.bytes, /*bulk=*/false)) {
    return;  // lost on the wire
  }
  // Adaptive-routing reorder: a jittered frame takes a longer path and
  // arrives behind frames launched after it. Drawn after the loss dice
  // so enabling reorder never perturbs which frames an existing seed
  // drops. Blackout checks above use the un-jittered arrival: the jitter
  // models path length, not a way to outrun a dark receiver.
  const FaultProfile& fault = profile_.fault;
  if (fault.reorder_prob > 0.0 && fault.jitter_max_us > 0.0 &&
      rng_.next_bool(fault.reorder_prob)) {
    arrival += fault.jitter_max_us * rng_.next_double();
    ++counters_.frames_reordered;
  }
  const size_t len = bytes.size();
  world_.at(arrival, [dest, frame = std::move(frame), len]() mutable {
    dest->deliver_frame(std::move(frame), len);
  });
}

void SimNic::send_bulk(NodeId dst, uint64_t cookie, size_t offset,
                       util::ConstBytes bytes, size_t segment_count,
                       TxDoneFn on_tx_done) {
  NMAD_ASSERT_MSG(profile_.rdma, "bulk send on a NIC without RDMA");
  SimNic* dest = peer(dst);
  NMAD_ASSERT_MSG(dest != nullptr, "no peer NIC on this rail");
  ++counters_.bulk_sent;
  if (trace_ != nullptr) {
    trace_->record(world_.now(), TraceKind::kBulkTx, node_, rail_,
                   bytes.size());
  }
  const SimTime arrival = launch(bytes.size(), segment_count,
                                 profile_.rdma_setup_us, std::move(on_tx_done));

  util::ByteBuffer copy;
  copy.append(bytes);
  if ((profile_.fault.any() || dest->profile_.fault.any()) &&
      apply_faults(dest, arrival, &copy, /*bulk=*/true)) {
    return;  // lost on the wire
  }
  const NodeId src = node_;
  // A long stream occupies the wire continuously, but the sim models it
  // as one delivery event at last-byte arrival. Surface the in-between
  // to the receiver as periodic activity pings, or a rail busy with a
  // single multi-hundred-µs DMA looks silent to its health monitor and
  // gets declared dead mid-transfer. Short slices add no events.
  if (dest->bulk_rx_) {
    const SimTime first_byte = arrival - static_cast<double>(bytes.size()) /
                                             profile_.bandwidth_mbps;
    for (SimTime at = first_byte + kBulkActivityPeriodUs; at < arrival;
         at += kBulkActivityPeriodUs) {
      world_.at(at, [dest, src]() {
        // A dark receiver hears nothing, activity pings included — a
        // ping landing inside a blackout window must not refresh the
        // rail's liveness (checked at fire time: node-crash windows can
        // be installed after the stream launched).
        if (dest->bulk_rx_ && !dest->in_blackout(dest->world_.now())) {
          dest->bulk_rx_(src);
        }
      });
    }
  }
  world_.at(arrival,
            [dest, src, cookie, offset, copy = std::move(copy)]() mutable {
              dest->deliver_bulk(src, cookie, offset, std::move(copy));
            });
}

void SimNic::deliver_frame(RxFrame&& frame, size_t bytes) {
  // Receive engine drains frames serially.
  SimTime start = rx_free_ > world_.now() ? rx_free_ : world_.now();
  // A paused receiver stops polling: queued frames wait out the pause
  // windows (delayed, never lost). Loop until stable so back-to-back or
  // unsorted windows compose.
  bool moved = !profile_.fault.rx_pauses.empty();
  while (moved) {
    moved = false;
    for (const FaultWindow& w : profile_.fault.rx_pauses) {
      if (start >= w.begin_us && start < w.end_us) {
        start = w.end_us;
        moved = true;
      }
    }
  }
  rx_free_ = start + profile_.rx_drain_us;
  ++counters_.frames_received;
  counters_.bytes_received += bytes;
  if (trace_ != nullptr) {
    trace_->record(start, TraceKind::kFrameRx, node_, rail_, bytes);
  }
  if (start > world_.now()) {
    world_.at(start, [this, frame = std::move(frame)]() mutable {
      NMAD_ASSERT_MSG(static_cast<bool>(rx_handler_),
                      "frame with no rx handler");
      rx_handler_(std::move(frame));
    });
    return;
  }
  NMAD_ASSERT_MSG(static_cast<bool>(rx_handler_), "frame with no rx handler");
  rx_handler_(std::move(frame));
}

void SimNic::deliver_bulk(NodeId src, uint64_t cookie, size_t offset,
                          util::ByteBuffer data) {
  // Even an orphan proves the link carries traffic: liveness first.
  if (bulk_rx_) bulk_rx_(src);
  auto it = sinks_.find(cookie);
  if (it == sinks_.end()) {
    // Late duplicate after its sink completed and was cancelled: only
    // legal when someone registered an orphan handler (reliability layer);
    // otherwise it is a protocol bug, as before.
    NMAD_ASSERT_MSG(static_cast<bool>(bulk_orphan_),
                    "bulk frame arrived with no posted sink (protocol bug)");
    ++counters_.bulk_orphaned;
    bulk_orphan_(src, cookie, offset, data.size());
    return;
  }
  ++counters_.bulk_received;
  counters_.bytes_received += data.size();
  if (trace_ != nullptr) {
    trace_->record(world_.now(), TraceKind::kBulkRx, node_, rail_,
                   data.size());
  }
  it->second->deposit(offset, data.view());
}

void SimNic::post_bulk_sink(BulkSink* sink) {
  NMAD_ASSERT(sink != nullptr);
  const bool inserted = sinks_.emplace(sink->cookie(), sink).second;
  NMAD_ASSERT_MSG(inserted, "duplicate bulk cookie on NIC");
}

void SimNic::remove_bulk_sink(uint64_t cookie) {
  const size_t erased = sinks_.erase(cookie);
  NMAD_ASSERT_MSG(erased == 1, "removing unknown bulk cookie");
}

}  // namespace nmad::simnet
