#include "simnet/fabric.hpp"

namespace nmad::simnet {

NodeId Fabric::add_node(const CpuProfile& cpu_profile) {
  NMAD_ASSERT_MSG(rail_profiles_.empty(),
                  "add every node before adding rails");
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<SimNode>(world_, id, cpu_profile));
  return id;
}

RailIndex Fabric::add_rail(const NicProfile& profile) {
  NMAD_ASSERT_MSG(!nodes_.empty(), "rail added to an empty fabric");
  const auto rail = static_cast<RailIndex>(rail_profiles_.size());
  rail_profiles_.push_back(profile);

  std::vector<SimNic*> endpoints;
  endpoints.reserve(nodes_.size());
  for (auto& node : nodes_) {
    node->nics_.push_back(
        std::make_unique<SimNic>(world_, profile, node->id(), rail));
    endpoints.push_back(node->nics_.back().get());
  }
  for (SimNic* nic : endpoints) {
    // By-NodeId peer table (self slot nulled): peer() is an array load.
    std::vector<SimNic*> peers = endpoints;
    peers[nic->node()] = nullptr;
    nic->set_peers(std::move(peers));
  }
  return rail;
}

void Fabric::set_node_crashes(NodeId node,
                              const std::vector<FaultWindow>& windows) {
  NMAD_ASSERT(node < nodes_.size());
  SimNode& n = *nodes_[node];
  NMAD_ASSERT_MSG(!n.nics_.empty(), "node crash scheduled before any rail");
  for (auto& nic : n.nics_) {
    nic->add_blackouts(windows);
  }
  n.crash_windows_.insert(n.crash_windows_.end(), windows.begin(),
                          windows.end());
}

}  // namespace nmad::simnet
