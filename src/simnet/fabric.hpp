// Fabric: assembles nodes, CPUs, NICs and rails into one simulated cluster.
//
// A "rail" is one network technology instance: every node gets one NIC of
// that profile and all NICs on the rail are mutually reachable (crossbar
// switch with uniform latency, which matches the small clusters of the
// paper's testbed).
#pragma once

#include <memory>
#include <vector>

#include "simnet/cpu.hpp"
#include "simnet/nic.hpp"
#include "simnet/world.hpp"

namespace nmad::simnet {

class SimNode {
 public:
  SimNode(SimWorld& world, NodeId id, CpuProfile cpu_profile)
      : world_(world), id_(id), cpu_(world, cpu_profile) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }

  [[nodiscard]] size_t nic_count() const { return nics_.size(); }
  [[nodiscard]] SimNic& nic(RailIndex rail) {
    NMAD_ASSERT(rail < nics_.size());
    return *nics_[rail];
  }

  // The node's crash/restart count: how many scheduled crash windows have
  // fully elapsed by the current virtual time. Evaluated lazily off the
  // windows installed by Fabric::set_node_crashes, so a "restart" needs
  // no timer — the engine reads the bumped incarnation the first time it
  // beacons after the window ends. Deterministic by construction.
  [[nodiscard]] uint32_t incarnation() const {
    uint32_t n = 0;
    for (const FaultWindow& w : crash_windows_) {
      if (w.end_us <= world_.now()) ++n;
    }
    return n;
  }

 private:
  friend class Fabric;
  SimWorld& world_;
  NodeId id_;
  CpuModel cpu_;
  std::vector<std::unique_ptr<SimNic>> nics_;
  std::vector<FaultWindow> crash_windows_;
};

class Fabric {
 public:
  explicit Fabric(SimWorld& world) : world_(world) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Adds a node; must be called before any add_rail().
  NodeId add_node(const CpuProfile& cpu_profile);

  // Adds one NIC of `profile` to every node and wires them all together.
  RailIndex add_rail(const NicProfile& profile);

  // Schedules whole-node crash windows: every NIC of `node` goes dark
  // atomically for each window (blackouts appended to the per-rail fault
  // profile at both ends of the physics), and the node's incarnation is
  // one higher after each window ends. Call after every add_rail().
  void set_node_crashes(NodeId node, const std::vector<FaultWindow>& windows);

  [[nodiscard]] SimWorld& world() { return world_; }
  [[nodiscard]] size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] size_t rail_count() const { return rail_profiles_.size(); }
  [[nodiscard]] SimNode& node(NodeId id) {
    NMAD_ASSERT(id < nodes_.size());
    return *nodes_[id];
  }
  [[nodiscard]] const NicProfile& rail_profile(RailIndex rail) const {
    NMAD_ASSERT(rail < rail_profiles_.size());
    return rail_profiles_[rail];
  }

 private:
  SimWorld& world_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::vector<NicProfile> rail_profiles_;
};

}  // namespace nmad::simnet
