#include "simnet/cpu.hpp"

#include "simnet/world.hpp"

namespace nmad::simnet {

SimTime CpuModel::charge(SimTime duration) {
  NMAD_ASSERT_MSG(duration >= 0.0, "negative CPU charge");
  const SimTime start =
      busy_until_ > world_.now() ? busy_until_ : world_.now();
  busy_until_ = start + duration;
  busy_total_ += duration;
  return busy_until_;
}

SimTime CpuModel::charge_memcpy(size_t bytes) {
  return charge(memcpy_cost(bytes));
}

SimTime CpuModel::free_at() const {
  return busy_until_ > world_.now() ? busy_until_ : world_.now();
}

}  // namespace nmad::simnet
