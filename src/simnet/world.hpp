// SimWorld: the virtual clock and event loop shared by every simulated
// node, NIC and engine instance in one experiment.
#pragma once

#include <cstdint>

#include "simnet/event_queue.hpp"
#include "simnet/time.hpp"

namespace nmad::simnet {

class SimWorld {
 public:
  SimWorld() = default;
  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  EventId at(SimTime when, EventFn fn) {
    return queue_.schedule_at(when, std::move(fn));
  }
  EventId after(SimTime delay, EventFn fn) {
    NMAD_ASSERT_MSG(delay >= 0.0, "negative delay");
    return queue_.schedule_at(now_ + delay, std::move(fn));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  // Runs the next pending event; false when the simulation is quiescent.
  bool run_one() { return queue_.run_one(&now_); }

  // Runs until the predicate becomes true; returns false if the event queue
  // drained first (deadlock in the modelled protocol — callers assert).
  template <typename Pred>
  bool run_until(Pred&& done) {
    while (!done()) {
      if (!run_one()) return false;
    }
    return true;
  }

  // Drains every pending event.
  void run_to_quiescence() {
    while (run_one()) {
    }
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] EventQueue::Stats queue_stats() const {
    return queue_.stats();
  }

 private:
  SimTime now_ = 0.0;
  EventQueue queue_;
};

}  // namespace nmad::simnet
