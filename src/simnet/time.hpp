// Virtual time for the discrete-event fabric.
//
// All simulated durations are microseconds, matching the units of the
// paper's plots. Double precision keeps the arithmetic simple; runs are
// bit-deterministic because every platform executes the same FP ops.
#pragma once

namespace nmad::simnet {

using SimTime = double;  // microseconds since simulation start

inline constexpr SimTime kNever = 1e300;

// Converts MB/s (decimal megabytes, as NIC datasheets quote) to µs/byte.
inline constexpr double us_per_byte(double mega_bytes_per_second) {
  return 1.0 / mega_bytes_per_second;  // 1 byte / (MB/s) == 1e-6 s / MB == 1 µs / MB
}

// Transfer time of `bytes` at `mega_bytes_per_second`.
inline constexpr SimTime wire_time(double bytes,
                                   double mega_bytes_per_second) {
  return bytes / mega_bytes_per_second;
}

}  // namespace nmad::simnet
