#include "simnet/event_queue.hpp"

#include <algorithm>
#include <array>
#include <bit>

namespace nmad::simnet {

EventQueue::EventQueue() {
  buckets_.assign(kMinBuckets, nullptr);
  tails_.assign(kMinBuckets, nullptr);
  mask_ = kMinBuckets - 1;
}

EventQueue::~EventQueue() = default;  // slabs destroy the nodes (and fns)

EventQueue::Node* EventQueue::acquire_node() {
  if (free_nodes_ == nullptr) {
    auto slab = std::make_unique<Node[]>(kSlabNodes);
    for (size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].next = free_nodes_;
      free_nodes_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
  }
  Node* node = free_nodes_;
  free_nodes_ = node->next;
  ++nodes_outstanding_;
  return node;
}

void EventQueue::release_node(Node* node) const {
  node->fn.reset();  // drop captures eagerly
  node->next = free_nodes_;
  free_nodes_ = node;
  NMAD_ASSERT(nodes_outstanding_ > 0);
  --nodes_outstanding_;
}

void EventQueue::retire_slot(uint32_t slot) {
  SlotRec& rec = slots_[slot];
  rec.node = nullptr;
  if (++rec.gen == 0) rec.gen = 1;  // keep ids non-zero across wrap
  free_slots_.push_back(slot);
}

void EventQueue::insert_node(Node* node) {
  // An event behind the year cursor would be skipped by the scan; pull
  // the cursor back so the invariant "no node precedes cur_vb_" holds.
  if (node->vb < cur_vb_ || live_ == 0) cur_vb_ = node->vb;
  const size_t b = node->vb & mask_;
  Node* tail = tails_[b];
  if (tail == nullptr) {
    buckets_[b] = tails_[b] = node;
    return;
  }
  if (before(*tail, *node)) {  // monotone streams append in O(1)
    tail->next = node;
    tails_[b] = node;
    return;
  }
  Node** link = &buckets_[b];
  while (*link != nullptr && before(**link, *node)) {
    link = &(*link)->next;
  }
  node->next = *link;
  *link = node;
}

EventQueue::Node* EventQueue::clean_head(size_t bucket) const {
  Node* head = buckets_[bucket];
  while (head != nullptr && head->cancelled) {
    buckets_[bucket] = head->next;
    release_node(head);
    head = buckets_[bucket];
  }
  if (head == nullptr) tails_[bucket] = nullptr;
  return head;
}

EventQueue::Node* EventQueue::find_min() const {
  // Year scan: bucket (cur_vb_ + k) covers virtual bucket cur_vb_ + k in
  // this pass; the first head that is exactly in its own virtual bucket
  // is the global minimum (buckets cover disjoint, increasing time
  // intervals, and no pending node precedes cur_vb_).
  for (size_t k = 0; k < buckets_.size(); ++k) {
    const uint64_t vb = cur_vb_ + k;
    Node* head = clean_head(vb & mask_);
    if (head != nullptr && head->vb == vb) {
      cur_vb_ = vb;
      return head;
    }
  }
  // Sparse year: nothing within a full rotation. Direct-search the
  // minimum head and jump the cursor to it.
  ++direct_searches_;
  Node* best = nullptr;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    Node* head = clean_head(b);
    if (head != nullptr && (best == nullptr || before(*head, *best))) {
      best = head;
    }
  }
  NMAD_ASSERT_MSG(best != nullptr, "live_ > 0 but no pending node found");
  cur_vb_ = best->vb;
  return best;
}

double EventQueue::choose_width() const {
  // Deterministic width estimate from the (sorted) pending set in
  // scratch_: the median gap over up to 64 evenly spaced samples, scaled
  // so a bucket holds a few events. The median shrugs off far-future
  // outliers (idle-rail probe timers parked seconds out) that would
  // wreck a simple span/count estimate.
  const size_t n = scratch_.size();
  if (n < 2) return std::max(width_, kMinWidth);
  const size_t samples = std::min<size_t>(n, 64);
  const size_t step = n / samples;
  std::array<double, 64> gaps;  // fixed-size: no allocation on rebuilds
  size_t count = 0;
  for (size_t i = step; i < n && count < gaps.size(); i += step) {
    gaps[count++] = (scratch_[i]->at - scratch_[i - step]->at) /
                    static_cast<double>(step);
  }
  std::sort(gaps.begin(), gaps.begin() + count);
  double gap = gaps[count / 2];
  if (gap <= 0.0) {
    // Median gap zero (heavy same-time bursts): fall back to the first
    // strictly positive gap, if any.
    auto it = std::upper_bound(gaps.begin(), gaps.begin() + count, 0.0);
    gap = it != gaps.begin() + count ? *it : 0.0;
  }
  return std::max(3.0 * gap, kMinWidth);
}

void EventQueue::resize(size_t want_buckets) {
  const size_t nbuckets = std::max(kMinBuckets, std::bit_ceil(want_buckets));
  // Collect every pending node (reaping lazily-cancelled ones on the
  // way) and rebuild in sorted order so every re-insert hits the O(1)
  // tail-append path.
  scratch_.clear();
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (Node* node = buckets_[b]; node != nullptr;) {
      Node* next = node->next;
      if (node->cancelled) {
        release_node(node);
      } else {
        scratch_.push_back(node);
      }
      node = next;
    }
  }
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Node* a, const Node* b) { return before(*a, *b); });
  width_ = choose_width();
  buckets_.assign(nbuckets, nullptr);
  tails_.assign(nbuckets, nullptr);
  mask_ = nbuckets - 1;
  cur_vb_ = scratch_.empty() ? 0 : vbucket_of(scratch_.front()->at);
  for (Node* node : scratch_) {
    node->vb = vbucket_of(node->at);
    node->next = nullptr;
    const size_t b = node->vb & mask_;
    if (tails_[b] == nullptr) {
      buckets_[b] = node;
    } else {
      tails_[b]->next = node;
    }
    tails_[b] = node;
  }
  scratch_.clear();
  direct_at_resize_ = direct_searches_;
  ++resizes_;
}

EventId EventQueue::schedule_at(SimTime at, EventFn fn) {
  NMAD_ASSERT_MSG(at >= 0.0, "event scheduled before time zero");
  if (nodes_outstanding_ + 1 > buckets_.size() * 2) {
    resize(buckets_.size() * 2);
  }
  Node* node = acquire_node();
  node->at = at;
  node->seq = next_seq_++;
  node->vb = vbucket_of(at);
  node->next = nullptr;
  node->cancelled = false;
  node->fn = std::move(fn);

  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(SlotRec{});
  }
  slots_[slot].node = node;
  node->slot = slot;

  insert_node(node);
  ++live_;
  ++scheduled_;
  return (static_cast<EventId>(slots_[slot].gen) << 32) | slot;
}

void EventQueue::cancel(EventId id) {
  const auto slot = static_cast<uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  SlotRec& rec = slots_[slot];
  if (rec.gen != gen || rec.node == nullptr) return;  // fired/stale/dup
  Node* node = rec.node;
  node->cancelled = true;
  node->fn.reset();  // free captures now; the shell is reaped lazily
  node->slot = kNoSlot;
  retire_slot(slot);
  NMAD_ASSERT(live_ > 0);
  --live_;
  ++cancelled_count_;
}

SimTime EventQueue::next_time() const {
  if (live_ == 0) return kNever;
  return find_min()->at;
}

bool EventQueue::run_one(SimTime* now) {
  if (live_ == 0) return false;
  // Width retune: if the year scan keeps falling through to the linear
  // direct search, the bucket width no longer matches the event spacing
  // (the workload's time scale changed). Rebuild at the same bucket count
  // with a width re-derived from the current pending set.
  if (direct_searches_ - direct_at_resize_ > buckets_.size() * 4) {
    resize(buckets_.size());
  }
  Node* node = find_min();
  const size_t b = node->vb & mask_;
  NMAD_ASSERT(buckets_[b] == node);
  buckets_[b] = node->next;
  if (buckets_[b] == nullptr) tails_[b] = nullptr;
  retire_slot(node->slot);
  EventFn fn = std::move(node->fn);
  const SimTime at = node->at;
  release_node(node);
  --live_;
  ++executed_;
  NMAD_ASSERT_MSG(at + 1e-9 >= *now, "time went backwards");
  if (at > *now) *now = at;
  fn();
  return true;
}

EventQueue::Stats EventQueue::stats() const {
  Stats s;
  s.scheduled = scheduled_;
  s.executed = executed_;
  s.cancelled = cancelled_count_;
  s.resizes = resizes_;
  s.direct_searches = direct_searches_;
  s.buckets = buckets_.size();
  s.pending = live_;
  s.node_capacity = slabs_.size() * kSlabNodes;
  s.node_slabs = slabs_.size();
  s.slot_capacity = slots_.size();
  return s;
}

}  // namespace nmad::simnet
