#include "simnet/event_queue.hpp"

#include <algorithm>

namespace nmad::simnet {

EventId EventQueue::schedule_at(SimTime at, EventFn fn) {
  NMAD_ASSERT_MSG(at >= 0.0, "event scheduled before time zero");
  const EventId id = next_id_++;
  heap_.push(Event{at, id, std::move(fn)});
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) return;  // already cancelled
  cancelled_.insert(it, id);
  NMAD_ASSERT(live_ > 0);
  --live_;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    const EventId id = heap_.top().id;
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end() || *it != id) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? kNever : heap_.top().at;
}

bool EventQueue::run_one(SimTime* now) {
  drop_cancelled();
  if (heap_.empty()) return false;
  // priority_queue::top is const; the event is moved out via const_cast,
  // which is safe because we pop immediately and never reheapify first.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  --live_;
  NMAD_ASSERT_MSG(event.at + 1e-9 >= *now, "time went backwards");
  if (event.at > *now) *now = event.at;
  event.fn();
  return true;
}

}  // namespace nmad::simnet
