// Host CPU cost model.
//
// Models the sequential execution resource of one node: software overheads
// and memory copies occupy the CPU and therefore delay everything that the
// same node does afterwards. This is what makes pack/unpack-based datatype
// handling (Figure 4 baseline) measurably slower than zero-copy rendezvous.
#pragma once

#include <cstddef>

#include "simnet/time.hpp"
#include "util/assert.hpp"

namespace nmad::simnet {

class SimWorld;

struct CpuProfile {
  // memcpy bandwidth is strongly size-dependent: small buffers live in the
  // 1 MB L2 of the 2006 Opteron and copy at cache speed, large buffers
  // stream through main memory. Figure 4's pack/unpack penalty comes from
  // the cold rate; eager receive copies mostly run at the hot rate.
  double memcpy_hot_mbps = 4500.0;   // cache-resident copies
  double memcpy_cold_mbps = 1400.0;  // streaming copies
  size_t memcpy_hot_threshold = 128 * 1024;  // <= this size counts as hot
  // Fixed cost of one memcpy call (setup), µs.
  double memcpy_call_us = 0.05;
};

class CpuModel {
 public:
  CpuModel(SimWorld& world, CpuProfile profile)
      : world_(world), profile_(profile) {}

  // Occupies the CPU for `duration` starting no earlier than now and no
  // earlier than the end of previously charged work; returns completion
  // time.
  SimTime charge(SimTime duration);

  // Charges a memcpy of `bytes` and returns completion time.
  SimTime charge_memcpy(size_t bytes);

  // Duration a memcpy of `bytes` would take (no charging).
  [[nodiscard]] SimTime memcpy_cost(size_t bytes) const {
    const double bw = bytes <= profile_.memcpy_hot_threshold
                          ? profile_.memcpy_hot_mbps
                          : profile_.memcpy_cold_mbps;
    return profile_.memcpy_call_us +
           wire_time(static_cast<double>(bytes), bw);
  }

  // Earliest instant at which new CPU work could start.
  [[nodiscard]] SimTime free_at() const;

  [[nodiscard]] SimTime busy_total() const { return busy_total_; }
  [[nodiscard]] const CpuProfile& profile() const { return profile_; }

 private:
  SimWorld& world_;
  CpuProfile profile_;
  SimTime busy_until_ = 0.0;
  SimTime busy_total_ = 0.0;
};

}  // namespace nmad::simnet
