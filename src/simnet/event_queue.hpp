// Priority event queue for the discrete-event engine.
//
// Ties at the same timestamp are broken by insertion order so simulation
// runs are fully deterministic regardless of queue internals.
//
// The production EventQueue is a Brown-style calendar queue: a
// power-of-two array of time buckets, each holding a short (at, seq)-
// sorted list, with a cursor that walks bucket-by-bucket through the
// current "year". Schedule and pop are O(1) amortized — the bucket array
// grows to track the pending-event high-water mark (grow-only, like the
// node slabs, so bursty populations never oscillate the allocator) and
// the bucket width is re-derived from the observed inter-event gaps on
// every rebuild — which is what lets one SimWorld carry thousands of
// ranks. If the workload's time scale shifts and the year scan starts
// missing, a same-size rebuild retunes the width. cancel() is O(1)
// through generation-stamped slots (the EventId encodes slot + gen, so a
// stale or duplicate cancel is fenced instead of corrupting a neighbour);
// cancelled events are skipped lazily when they surface at a bucket head,
// preserving the old lazy-cancel contract. Event nodes come from
// grow-only slabs and callbacks are small-buffer InlineFunctions, so the
// steady-state hot path performs no heap allocation at all.
//
// ReferenceHeapQueue below keeps the original binary-heap implementation
// (std::priority_queue + a sorted cancelled-id vector with its O(n)
// cancel) as the differential-test oracle and the benchmark baseline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "simnet/time.hpp"
#include "util/assert.hpp"
#include "util/inline_fn.hpp"

namespace nmad::simnet {

// 64 inline bytes cover every hot engine lambda (the largest, SimNic's
// bulk-delivery closure, measures 56); anything larger spills to the heap
// and bumps util::inline_fn_heap_allocs() for the regression tests.
using EventFn = util::InlineFunction<64>;
using EventId = uint64_t;

class EventQueue {
 public:
  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute time `at`. Returns an id usable for
  // cancel(); ids are never zero.
  EventId schedule_at(SimTime at, EventFn fn);

  // Lazily cancels a pending event (it is skipped when popped). O(1):
  // the id's generation stamp fences ids that already fired, were
  // already cancelled, or belong to a recycled slot.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] size_t size() const { return live_; }

  // Time of the earliest pending event; kNever when empty.
  [[nodiscard]] SimTime next_time() const;

  // Pops and runs the earliest event; returns false if none pending.
  // `now` is updated to the event's timestamp before the callback runs.
  bool run_one(SimTime* now);

  // Counters for the scale bench and the allocation-regression tests.
  // The capacity fields only grow while the queue warms up; a flat
  // snapshot across a steady-state phase proves the hot path allocated
  // nothing.
  struct Stats {
    uint64_t scheduled = 0;
    uint64_t executed = 0;
    uint64_t cancelled = 0;
    uint64_t resizes = 0;          // bucket-array rebuilds
    uint64_t direct_searches = 0;  // year scans that fell through
    size_t buckets = 0;            // current bucket-array size
    size_t pending = 0;            // live (non-cancelled) events
    size_t node_capacity = 0;      // slab-backed event nodes
    size_t node_slabs = 0;
    size_t slot_capacity = 0;      // generation-stamped cancel slots
  };
  [[nodiscard]] Stats stats() const;

 private:
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr size_t kMinBuckets = 16;
  static constexpr size_t kSlabNodes = 256;
  static constexpr double kMinWidth = 1e-6;  // µs; below tie-break noise

  struct Node {
    SimTime at = 0.0;
    uint64_t seq = 0;
    uint64_t vb = 0;  // virtual bucket: floor(at / width_), never wraps
    Node* next = nullptr;
    uint32_t slot = kNoSlot;
    bool cancelled = false;
    EventFn fn;
  };
  struct SlotRec {
    uint32_t gen = 1;  // starts at 1 so an EventId is never zero
    Node* node = nullptr;
  };

  [[nodiscard]] uint64_t vbucket_of(SimTime at) const {
    return static_cast<uint64_t>(at / width_);
  }
  static bool before(const Node& a, const Node& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  Node* acquire_node();
  void release_node(Node* node) const;
  void retire_slot(uint32_t slot);
  void insert_node(Node* node);
  Node* clean_head(size_t bucket) const;
  Node* find_min() const;
  void resize(size_t want_buckets);
  [[nodiscard]] double choose_width() const;

  // Bucket array (heads + tails for O(1) append of monotone streams).
  // Mutable: next_time() is logically const but lazily reaps cancelled
  // nodes and advances the year cursor, exactly like the old
  // drop_cancelled().
  mutable std::vector<Node*> buckets_;
  mutable std::vector<Node*> tails_;
  size_t mask_ = 0;
  double width_ = 1.0;
  mutable uint64_t cur_vb_ = 0;  // year cursor: next virtual bucket to scan

  // Event-node slabs + freelist (nodes are recycled, never freed).
  std::vector<std::unique_ptr<Node[]>> slabs_;
  mutable Node* free_nodes_ = nullptr;
  mutable size_t nodes_outstanding_ = 0;  // live + lazily-cancelled

  // Generation-stamped cancel slots.
  std::vector<SlotRec> slots_;
  std::vector<uint32_t> free_slots_;

  size_t live_ = 0;
  uint64_t direct_at_resize_ = 0;  // direct_searches_ at the last rebuild
  uint64_t next_seq_ = 1;
  uint64_t scheduled_ = 0;
  uint64_t executed_ = 0;
  uint64_t cancelled_count_ = 0;
  uint64_t resizes_ = 0;
  mutable uint64_t direct_searches_ = 0;
  mutable std::vector<Node*> scratch_;  // reused by resize()
};

// The pre-calendar implementation, kept verbatim as the differential-test
// oracle (identical (at, insertion-order) pop contract) and the
// heap-baseline the scale bench measures the calendar queue against —
// including its O(n) sorted-vector cancel, which is the bug being fixed.
class ReferenceHeapQueue {
 public:
  EventId schedule_at(SimTime at, EventFn fn) {
    NMAD_ASSERT_MSG(at >= 0.0, "event scheduled before time zero");
    const EventId id = next_id_++;
    heap_.push(Event{at, id, std::move(fn)});
    ++live_;
    return id;
  }

  void cancel(EventId id) {
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
    if (it != cancelled_.end() && *it == id) return;  // already cancelled
    cancelled_.insert(it, id);
    NMAD_ASSERT(live_ > 0);
    --live_;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] size_t size() const { return live_; }

  [[nodiscard]] SimTime next_time() const {
    drop_cancelled();
    return heap_.empty() ? kNever : heap_.top().at;
  }

  bool run_one(SimTime* now) {
    drop_cancelled();
    if (heap_.empty()) return false;
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    --live_;
    NMAD_ASSERT_MSG(event.at + 1e-9 >= *now, "time went backwards");
    if (event.at > *now) *now = event.at;
    event.fn();
    return true;
  }

 private:
  struct Event {
    SimTime at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // earlier insertion first
    }
  };

  void drop_cancelled() const {
    while (!heap_.empty()) {
      const EventId id = heap_.top().id;
      auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
      if (it == cancelled_.end() || *it != id) break;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  mutable std::vector<EventId> cancelled_;  // sorted ids pending skip
  size_t live_ = 0;
  EventId next_id_ = 1;
};

}  // namespace nmad::simnet
