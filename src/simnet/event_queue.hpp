// Priority event queue for the discrete-event engine.
//
// Ties at the same timestamp are broken by insertion order so simulation
// runs are fully deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simnet/time.hpp"
#include "util/assert.hpp"

namespace nmad::simnet {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`. Returns an id usable for cancel().
  EventId schedule_at(SimTime at, EventFn fn);

  // Lazily cancels a pending event (it is skipped when popped).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] size_t size() const { return live_; }

  // Time of the earliest pending event; kNever when empty.
  [[nodiscard]] SimTime next_time() const;

  // Pops and runs the earliest event; returns false if none pending.
  // `now` is updated to the event's timestamp before the callback runs.
  bool run_one(SimTime* now);

 private:
  struct Event {
    SimTime at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // earlier insertion first
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  mutable std::vector<EventId> cancelled_;  // sorted ids pending skip
  size_t live_ = 0;
  EventId next_id_ = 1;
};

}  // namespace nmad::simnet
