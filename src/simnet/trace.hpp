// Event trace recorder for the simulated fabric.
//
// When attached to NICs (and optionally fed by the engine), records a
// timestamped event stream — frame launches, deliveries, bulk transfers —
// that tests assert on and developers dump as a readable timeline when
// debugging protocol schedules.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "simnet/time.hpp"

namespace nmad::simnet {

enum class TraceKind : uint8_t {
  kFrameTx = 0,   // track-0 frame handed to the wire
  kFrameRx,       // track-0 frame surfaced to software
  kBulkTx,        // track-1 body slice launched
  kBulkRx,        // track-1 slice deposited
  kUser,          // free-form marker from upper layers
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  SimTime at = 0.0;
  TraceKind kind = TraceKind::kUser;
  uint32_t node = 0;
  uint32_t rail = 0;
  uint64_t bytes = 0;
  std::string note;  // optional detail (user markers)
};

class TraceLog {
 public:
  void record(SimTime at, TraceKind kind, uint32_t node, uint32_t rail,
              uint64_t bytes, std::string note = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  // Number of events of one kind (optionally restricted to one node).
  [[nodiscard]] size_t count(TraceKind kind, int node = -1) const;

  // Human-readable timeline, one event per line.
  void dump(std::FILE* out = stderr) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace nmad::simnet
