// Simulated network interface cards.
//
// A SimNic is one endpoint of one rail (network technology) on one node.
// It models:
//   - transmit serialization: one DMA engine, frames occupy it for
//     overhead + bytes/bandwidth;
//   - wire latency: delivery at tx_start + latency + bytes/bandwidth;
//   - receive serialization (frames from several senders drain in order);
//   - track 0 (eager frames handed to a software rx handler) and track 1
//     (bulk frames DMA'd straight into a pre-posted BulkSink region —
//     the zero-copy rendezvous data path).
//
// The NIC itself never charges host CPU time: drivers decide what costs
// host cycles (gather setup vs bounce-buffer memcpy etc.) via CpuModel.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/cpu.hpp"
#include "simnet/time.hpp"
#include "simnet/trace.hpp"
#include "util/buffer.hpp"
#include "util/inline_fn.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace nmad::simnet {

class SimWorld;
class SimNic;

using NodeId = uint32_t;
using RailIndex = uint32_t;

// Scheduled interval during which a NIC neither emits nor hears frames.
struct FaultWindow {
  SimTime begin_us = 0.0;
  SimTime end_us = 0.0;
};

// Fault model of one rail. All randomness is drawn from a per-NIC
// deterministic RNG seeded from `seed` mixed with the node and rail ids,
// so any failure run replays bit-identically from its seed.
struct FaultProfile {
  double frame_drop_prob = 0.0;  // track-0 frames silently lost
  double bit_flip_prob = 0.0;    // track-0 frames with one corrupted bit
  double bulk_drop_prob = 0.0;   // track-1 slices silently lost
  // Packet reordering: each track-0 frame independently draws a delivery
  // jitter of up to jitter_max_us with probability reorder_prob. A
  // jittered frame arrives late and can land *behind* frames launched
  // after it — the adaptive-routing / multipath shape spray reassembly
  // must tolerate. Frames are delayed, never lost; track-1 (RDMA) slices
  // keep their ordered per-sink delivery.
  double reorder_prob = 0.0;
  double jitter_max_us = 0.0;
  uint64_t seed = 0;
  // Blackouts apply at both ends: a frame is lost if its sender launches
  // inside a window or its receiver would hear it inside one. The
  // transmit engine still cycles (tx-done fires), as on real hardware
  // where the DMA completes even though the link is dark.
  std::vector<FaultWindow> blackouts;
  // Receive-side poll stalls: a slow receiver that stops draining its
  // track-0 queue. Frames arriving (or queued) inside a window are
  // delayed until it ends — never lost — so the sender keeps pumping
  // into a consumer that is not listening, the classic overload shape
  // flow control exists for. Track-1 (RDMA) deposits bypass the polling
  // loop and are unaffected. Deliberately not part of any(): pauses are
  // delays, not faults to roll dice for.
  std::vector<FaultWindow> rx_pauses;
  // Gray-failure shapes (the rail stays up and beaconing, it just gets
  // worse): `flaky` windows add an extra, intermittent drop draw on top
  // of the persistent probabilities, and `bandwidth_throttle` scales the
  // effective link bandwidth (0 < factor <= 1). The flaky dice roll only
  // inside a configured window, so enabling the gray model never changes
  // which frames an existing seed drops elsewhere; the throttle draws no
  // randomness at all.
  double flaky_drop_prob = 0.0;
  std::vector<FaultWindow> flaky;
  double bandwidth_throttle = 1.0;

  [[nodiscard]] bool any() const {
    return frame_drop_prob > 0.0 || bit_flip_prob > 0.0 ||
           bulk_drop_prob > 0.0 ||
           (reorder_prob > 0.0 && jitter_max_us > 0.0) ||
           (flaky_drop_prob > 0.0 && !flaky.empty()) || !blackouts.empty();
  }
};

struct NicProfile {
  std::string name;
  double latency_us = 2.0;        // one-way small-frame latency
  double bandwidth_mbps = 1000.0; // sustained link bandwidth
  double tx_post_us = 0.1;        // NIC-side cost to launch one frame
  double rx_drain_us = 0.1;       // NIC-side cost to surface one frame
  uint32_t gather_max_segments = 1;  // 1 = no gather DMA
  double gather_segment_us = 0.05;   // DMA setup per extra segment
  bool rdma = false;                 // supports directed bulk (track 1)
  double rdma_setup_us = 0.5;        // per bulk transfer setup
  size_t rdv_threshold = 32 * 1024;  // recommended eager/rdv switch
  size_t max_eager_frame = 64 * 1024;  // largest track-0 frame
  FaultProfile fault;                // lossy-link model (defaults: lossless)

  [[nodiscard]] bool has_gather() const { return gather_max_segments > 1; }
};

// A track-0 frame as delivered to the receiving engine.
struct RxFrame {
  NodeId src_node = 0;
  RailIndex rail = 0;
  util::ByteBuffer bytes;
};

// Pre-posted destination region for track-1 (bulk/zero-copy) data. One
// sink may be fed through several rails at once (multi-rail split); the
// completion callback fires when every expected byte has landed.
class BulkSink {
 public:
  BulkSink(uint64_t cookie, util::MutableBytes region, size_t expected,
           std::function<void()> on_complete)
      : cookie_(cookie),
        region_(region),
        expected_(expected),
        on_complete_(std::move(on_complete)) {
    NMAD_ASSERT(expected <= region.size());
  }

  [[nodiscard]] uint64_t cookie() const { return cookie_; }
  [[nodiscard]] size_t expected() const { return expected_; }
  [[nodiscard]] size_t received() const { return received_; }
  [[nodiscard]] bool complete() const { return received_ == expected_; }

  // Observer fired on every deposit, duplicates included — the reliability
  // layer acks each slice it hears, even retransmitted ones.
  void set_on_deposit(std::function<void(size_t, size_t)> fn) {
    on_deposit_ = std::move(fn);
  }

  // Called by the NIC at delivery time. Overlapping re-deposits (slice
  // retransmissions on a lossy fabric) are idempotent: received() counts
  // distinct covered bytes, not deposited bytes.
  void deposit(size_t offset, util::ConstBytes data);

 private:
  uint64_t cookie_;
  util::MutableBytes region_;
  size_t expected_;
  size_t received_ = 0;
  std::map<size_t, size_t> covered_;  // offset → end, disjoint intervals
  std::function<void()> on_complete_;
  std::function<void(size_t, size_t)> on_deposit_;
};

class SimNic {
 public:
  // Allocation-free, move-only handlers: the driver above forwards
  // move-only InlineFunction callbacks through these, which std::function
  // cannot hold. Capacity 48 fits the driver's adapter closures inline
  // (and a TxDoneFn still fits inside a 64-byte EventFn when deferred).
  using RxHandler = util::InlineFunction<48, void(RxFrame&&)>;
  using TxDoneFn = util::InlineFunction<48>;
  // (src, cookie, offset, len): bulk frame that arrived after its sink was
  // cancelled — a late retransmission on a lossy fabric.
  using BulkOrphanFn =
      util::InlineFunction<48, void(NodeId, uint64_t, size_t, size_t)>;

  SimNic(SimWorld& world, NicProfile profile, NodeId node, RailIndex rail)
      : world_(world),
        profile_(std::move(profile)),
        node_(node),
        rail_(rail),
        rng_(profile_.fault.seed ^
             (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(node) + 1)) ^
             (0xC2B2AE3D27D4EB4Full * (static_cast<uint64_t>(rail) + 1))) {}

  SimNic(const SimNic&) = delete;
  SimNic& operator=(const SimNic&) = delete;

  [[nodiscard]] const NicProfile& profile() const { return profile_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] RailIndex rail() const { return rail_; }

  // Connects this endpoint to its peers on the same rail (set by Fabric).
  // The vector is indexed by NodeId — slot [node()] is this NIC's own
  // (never-used) entry — so peer() is one array load at any rank count.
  void set_peers(std::vector<SimNic*> peers) { peers_ = std::move(peers); }
  [[nodiscard]] SimNic* peer(NodeId node) const {
    return node < peers_.size() ? peers_[node] : nullptr;
  }

  // True when the transmit engine could start a new frame right now.
  [[nodiscard]] bool tx_idle() const;
  // Earliest time the transmit engine frees up.
  [[nodiscard]] SimTime tx_free_at() const { return tx_free_; }

  // Launches a track-0 frame carrying `bytes` towards `dst`. `on_tx_done`
  // fires when the transmit engine is free again (NIC idle → the transfer
  // layer asks the scheduler for more work). The frame content is copied
  // internally: sim bookkeeping, not modelled host work.
  void send_frame(NodeId dst, util::ConstBytes bytes, size_t segment_count,
                  TxDoneFn on_tx_done);

  // Launches a track-1 bulk frame into the sink posted under `cookie` on
  // the destination NIC, at `offset` within the sink region.
  void send_bulk(NodeId dst, uint64_t cookie, size_t offset,
                 util::ConstBytes bytes, size_t segment_count,
                 TxDoneFn on_tx_done);

  // Receiving side ----------------------------------------------------
  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  // Registers a bulk sink; the NIC does not own it. Several rails may
  // share one sink (multi-rail reassembly).
  void post_bulk_sink(BulkSink* sink);
  void remove_bulk_sink(uint64_t cookie);
  [[nodiscard]] bool has_bulk_sink(uint64_t cookie) const {
    return sinks_.count(cookie) != 0;
  }

  // Installs receive-side poll stalls after construction (tests/benches
  // reach the NIC through the fabric once the cluster is built).
  void set_rx_pauses(std::vector<FaultWindow> pauses) {
    profile_.fault.rx_pauses = std::move(pauses);
  }

  // Installs blackout windows after construction, same access pattern as
  // set_rx_pauses — rail-flap scenarios darken a rail mid-run and expect
  // the health layer to notice, fail over, and revive it afterwards.
  void set_blackouts(std::vector<FaultWindow> windows) {
    profile_.fault.blackouts = std::move(windows);
  }

  // Appends blackout windows to the existing set (node-crash injection
  // darkens every NIC of a node on top of whatever per-rail windows the
  // fault profile already scheduled).
  void add_blackouts(const std::vector<FaultWindow>& windows) {
    profile_.fault.blackouts.insert(profile_.fault.blackouts.end(),
                                    windows.begin(), windows.end());
  }

  // Gray-failure knobs, installed post-construction like the windows
  // above: persistent elevated drop, intermittent flaky windows, and a
  // bandwidth throttle — degraded-but-beaconing shapes for the adaptive
  // election loop to detect and route around.
  void set_frame_drop_prob(double p) { profile_.fault.frame_drop_prob = p; }
  // Adaptive-routing jitter, installable mid-run like the knobs above.
  // Per-NIC (not per-rail-pair), so a harness can delay one node's
  // outbound frames only — the shape that strands a crashed node's
  // previous-life beacons on the wire past its own restart.
  void set_reorder(double prob, double jitter_max_us) {
    profile_.fault.reorder_prob = prob;
    profile_.fault.jitter_max_us = jitter_max_us;
  }
  void set_flaky(double drop_prob, std::vector<FaultWindow> windows) {
    profile_.fault.flaky_drop_prob = drop_prob;
    profile_.fault.flaky = std::move(windows);
  }
  void set_bandwidth_throttle(double factor) {
    NMAD_ASSERT(factor > 0.0 && factor <= 1.0);
    profile_.fault.bandwidth_throttle = factor;
  }

  // True when `at` falls inside a flaky window of this NIC.
  [[nodiscard]] bool in_flaky(SimTime at) const {
    for (const FaultWindow& w : profile_.fault.flaky) {
      if (at >= w.begin_us && at < w.end_us) return true;
    }
    return false;
  }

  // Handler for bulk frames with no posted sink. Without one, such a frame
  // is a protocol bug and asserts; with reliability enabled it is a late
  // duplicate and the engine re-acks it.
  void set_bulk_orphan_handler(BulkOrphanFn fn) {
    bulk_orphan_ = std::move(fn);
  }

  // (src): fires on every track-1 arrival, sink hit or orphan, and
  // periodically while a long stream is still on the wire (see
  // kBulkActivityPeriodUs). Track-1 deposits bypass the rx handler, so
  // without this hook a rail carrying nothing but a long one-directional
  // bulk stream looks silent to the health monitor and gets falsely
  // declared dead mid-transfer.
  using BulkRxFn = util::InlineFunction<48, void(NodeId)>;
  void set_bulk_rx_handler(BulkRxFn fn) { bulk_rx_ = std::move(fn); }

  // Spacing of the in-flight activity pings a long bulk stream delivers
  // to the receiving NIC. Well under any sane suspect threshold; slices
  // shorter than this add no events at all.
  static constexpr SimTime kBulkActivityPeriodUs = 25.0;

  // True when `at` falls inside a scheduled blackout window of this NIC.
  [[nodiscard]] bool in_blackout(SimTime at) const {
    for (const FaultWindow& w : profile_.fault.blackouts) {
      if (at >= w.begin_us && at < w.end_us) return true;
    }
    return false;
  }

  // Optional event trace (not owned); records every frame/bulk launch and
  // delivery on this NIC.
  void set_trace(TraceLog* trace) { trace_ = trace; }

  // Counters used by tests and benches.
  struct Counters {
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
    uint64_t bulk_sent = 0;
    uint64_t bulk_received = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    SimTime tx_busy_us = 0.0;
    // Fault-injection outcomes (sender-side accounting).
    uint64_t frames_dropped = 0;
    uint64_t frames_corrupted = 0;
    uint64_t frames_reordered = 0;  // track-0 frames given delivery jitter
    uint64_t bulk_dropped = 0;
    uint64_t bulk_orphaned = 0;  // receiver-side: late frames, sink gone
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  // Common tx path: returns frame arrival time at the destination.
  SimTime launch(size_t bytes, size_t segment_count, double extra_setup_us,
                 TxDoneFn on_tx_done);

  void deliver_frame(RxFrame&& frame, size_t bytes);
  void deliver_bulk(NodeId src, uint64_t cookie, size_t offset,
                    util::ByteBuffer data);

  // Applies the fault model to a frame about to leave now and arrive at
  // `dest` at `arrival`. Returns true when the frame is lost; may corrupt
  // `frame` in place (track-0 bit flips, caught by the wire checksum).
  bool apply_faults(SimNic* dest, SimTime arrival, util::ByteBuffer* frame,
                    bool bulk);

  SimWorld& world_;
  NicProfile profile_;
  NodeId node_;
  RailIndex rail_;
  util::Rng rng_;
  std::vector<SimNic*> peers_;
  RxHandler rx_handler_;
  BulkOrphanFn bulk_orphan_;
  BulkRxFn bulk_rx_;
  std::unordered_map<uint64_t, BulkSink*> sinks_;  // cookie → sink, O(1)
  SimTime tx_free_ = 0.0;
  SimTime rx_free_ = 0.0;
  TraceLog* trace_ = nullptr;
  Counters counters_;
};

}  // namespace nmad::simnet
