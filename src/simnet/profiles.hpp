// Calibrated NIC and host profiles.
//
// Numbers are set to the 2006-era hardware the paper evaluated on
// (§5: dual-core 1.8 GHz Opterons, Myri-10G/MX 1.2.0, Quadrics QM500).
// Calibration anchors, from the paper's own measurements:
//   - MX/Myri-10G:   MPI short-message latency ≈ 2.5–3 µs, peak ≈ 1200 MB/s
//   - Elan/Quadrics: MPI short-message latency ≈ 1.6–2 µs, peak ≈ 900 MB/s
//   - MAD-MPI reaches 1155 MB/s (MX) and 835 MB/s (Quadrics) with < 0.5 µs
//     constant overhead versus the native MPIs.
#pragma once

#include "simnet/cpu.hpp"
#include "simnet/nic.hpp"

namespace nmad::simnet {

// Myri-10G with the MX message-passing driver.
NicProfile mx_myri10g_profile();

// Myrinet 2000 with the older GM driver (the paper's §4 also lists a
// GM/MYRINET transfer layer): higher latency, 2 Gb/s wire, no gather DMA.
NicProfile gm_myrinet2000_profile();

// Quadrics QM500 (Elan4) with the Elan driver.
NicProfile elan_quadrics_profile();

// SCI with the SISCI driver (shared-memory style remote writes).
NicProfile sci_profile();

// Plain gigabit Ethernet with TCP: high latency, kernel copies, no RDMA.
NicProfile tcp_gige_profile();

// Intra-node shared-memory "rail": sub-microsecond latency, memory-speed
// bandwidth, no gather engine (copies are the transport).
NicProfile shm_profile();

// 2006 dual-core Opteron host.
CpuProfile opteron_2006_profile();

// Looks a profile up by the names used on bench command lines
// ("mx", "quadrics", "sci", "tcp"); returns false for unknown names.
bool nic_profile_by_name(const std::string& name, NicProfile* out);

}  // namespace nmad::simnet
