#include "simnet/profiles.hpp"

namespace nmad::simnet {

NicProfile mx_myri10g_profile() {
  NicProfile p;
  p.name = "mx-myri10g";
  // Per-frame NIC costs dominate small-message behaviour on MX: each send
  // is a PIO copy + doorbell, each receive a polled queue entry. This is
  // the cost that aggregation amortises (a frame carrying 8 chunks pays it
  // once); the pure wire/switch latency is comparatively small.
  p.latency_us = 0.35;
  p.bandwidth_mbps = 1205.0;
  p.tx_post_us = 1.4;
  p.rx_drain_us = 0.6;
  p.gather_max_segments = 32;
  p.gather_segment_us = 0.05;
  p.rdma = true;
  p.rdma_setup_us = 1.2;
  p.rdv_threshold = 32 * 1024;
  p.max_eager_frame = 32 * 1024;
  return p;
}

NicProfile gm_myrinet2000_profile() {
  NicProfile p;
  p.name = "gm-myrinet2000";
  p.latency_us = 3.5;
  p.bandwidth_mbps = 245.0;
  p.tx_post_us = 2.2;   // GM's per-message host cost was much higher
  p.rx_drain_us = 1.2;
  p.gather_max_segments = 1;  // no gather DMA: bounce copies
  p.gather_segment_us = 0.0;
  p.rdma = true;
  p.rdma_setup_us = 4.0;
  p.rdv_threshold = 16 * 1024;
  p.max_eager_frame = 16 * 1024;
  return p;
}

NicProfile elan_quadrics_profile() {
  NicProfile p;
  p.name = "elan-quadrics";
  // Elan4 has a lower per-message cost than MX (STEN/event units on the
  // NIC) and a lower wire latency, but less bandwidth.
  p.latency_us = 0.15;
  p.bandwidth_mbps = 880.0;
  p.tx_post_us = 1.0;
  p.rx_drain_us = 0.4;
  p.gather_max_segments = 16;
  p.gather_segment_us = 0.06;
  p.rdma = true;
  p.rdma_setup_us = 0.9;
  p.rdv_threshold = 16 * 1024;
  p.max_eager_frame = 16 * 1024;
  return p;
}

NicProfile sci_profile() {
  NicProfile p;
  p.name = "sisci-sci";
  p.latency_us = 2.5;
  p.bandwidth_mbps = 320.0;
  p.tx_post_us = 0.4;
  p.rx_drain_us = 0.4;
  p.gather_max_segments = 1;  // remote-write interface, no gather DMA
  p.gather_segment_us = 0.0;
  p.rdma = true;
  p.rdma_setup_us = 1.5;
  p.rdv_threshold = 8 * 1024;
  p.max_eager_frame = 8 * 1024;
  return p;
}

NicProfile tcp_gige_profile() {
  NicProfile p;
  p.name = "tcp-gige";
  p.latency_us = 45.0;
  p.bandwidth_mbps = 112.0;
  p.tx_post_us = 4.0;   // syscall + kernel stack
  p.rx_drain_us = 4.0;
  p.gather_max_segments = 8;  // writev
  p.gather_segment_us = 0.3;
  p.rdma = false;
  p.rdma_setup_us = 0.0;
  p.rdv_threshold = 64 * 1024;
  p.max_eager_frame = 64 * 1024;
  return p;
}

NicProfile shm_profile() {
  NicProfile p;
  p.name = "shm";
  p.latency_us = 0.25;
  p.bandwidth_mbps = 2600.0;  // bounded by one memcpy stream
  p.tx_post_us = 0.15;
  p.rx_drain_us = 0.15;
  p.gather_max_segments = 1;
  p.gather_segment_us = 0.0;
  p.rdma = true;  // large blocks map as single-copy shared segments
  p.rdma_setup_us = 0.3;
  p.rdv_threshold = 16 * 1024;
  p.max_eager_frame = 16 * 1024;
  return p;
}

CpuProfile opteron_2006_profile() {
  CpuProfile p;
  p.memcpy_hot_mbps = 4500.0;
  p.memcpy_cold_mbps = 1400.0;
  p.memcpy_hot_threshold = 128 * 1024;
  p.memcpy_call_us = 0.05;
  return p;
}

bool nic_profile_by_name(const std::string& name, NicProfile* out) {
  if (out == nullptr) return false;
  if (name == "mx" || name == "myri10g" || name == "mx-myri10g") {
    *out = mx_myri10g_profile();
  } else if (name == "gm" || name == "myrinet2000" ||
             name == "gm-myrinet2000") {
    *out = gm_myrinet2000_profile();
  } else if (name == "quadrics" || name == "elan" || name == "elan-quadrics") {
    *out = elan_quadrics_profile();
  } else if (name == "sci" || name == "sisci" || name == "sisci-sci") {
    *out = sci_profile();
  } else if (name == "tcp" || name == "gige" || name == "tcp-gige") {
    *out = tcp_gige_profile();
  } else if (name == "shm") {
    *out = shm_profile();
  } else {
    return false;
  }
  return true;
}

}  // namespace nmad::simnet
