// Implementation of the C API (include/nmad.h).
#include "nmad.h"

#include <memory>

#include "nmad/api/session.hpp"
#include "nmad/core/strategy.hpp"
#include "nmad/strategies/builtin.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

struct nmad_cluster {
  std::unique_ptr<nmad::api::Cluster> impl;
};

struct nmad_request {
  nmad::core::Request* inner = nullptr;
  nmad::core::Core* owner = nullptr;
};

extern "C" {

nmad_cluster_t* nmad_cluster_create(const char* net, int nodes,
                                    const char* strategy) {
  if (net == nullptr || strategy == nullptr || nodes < 2) return nullptr;
  nmad::simnet::NicProfile profile;
  if (!nmad::simnet::nic_profile_by_name(net, &profile)) return nullptr;
  if (nmad::core::make_strategy(strategy) == nullptr) {
    // Built-ins may not be registered yet (no Core constructed): register
    // and retry once.
    nmad::core::ensure_builtin_strategies();
    if (nmad::core::make_strategy(strategy) == nullptr) return nullptr;
  }

  nmad::api::ClusterOptions options;
  options.nodes = static_cast<size_t>(nodes);
  options.rails = {profile};
  options.core.strategy = strategy;
  auto* cluster = new nmad_cluster;
  cluster->impl = std::make_unique<nmad::api::Cluster>(std::move(options));
  return cluster;
}

void nmad_cluster_destroy(nmad_cluster_t* cluster) { delete cluster; }

int nmad_cluster_size(const nmad_cluster_t* cluster) {
  if (cluster == nullptr) return 0;
  return static_cast<int>(cluster->impl->node_count());
}

nmad_gate_t nmad_gate(nmad_cluster_t* cluster, int from, int to) {
  return cluster->impl->gate(static_cast<nmad::simnet::NodeId>(from),
                             static_cast<nmad::simnet::NodeId>(to));
}

nmad_request_t* nmad_isend(nmad_cluster_t* cluster, int node,
                           nmad_gate_t gate, uint64_t tag, const void* buf,
                           size_t len) {
  if (cluster == nullptr || node < 0 ||
      static_cast<size_t>(node) >= cluster->impl->node_count()) {
    return nullptr;
  }
  if (buf == nullptr && len != 0) return nullptr;
  nmad::core::Core& core =
      cluster->impl->core(static_cast<nmad::simnet::NodeId>(node));
  auto* request = new nmad_request;
  request->owner = &core;
  request->inner =
      core.isend(gate, tag, nmad::util::as_bytes_view(buf, len));
  return request;
}

nmad_request_t* nmad_irecv(nmad_cluster_t* cluster, int node,
                           nmad_gate_t gate, uint64_t tag, void* buf,
                           size_t len) {
  if (cluster == nullptr || node < 0 ||
      static_cast<size_t>(node) >= cluster->impl->node_count()) {
    return nullptr;
  }
  if (buf == nullptr && len != 0) return nullptr;
  nmad::core::Core& core =
      cluster->impl->core(static_cast<nmad::simnet::NodeId>(node));
  auto* request = new nmad_request;
  request->owner = &core;
  request->inner =
      core.irecv(gate, tag, nmad::util::as_writable_bytes(buf, len));
  return request;
}

int nmad_test(const nmad_request_t* request) {
  return (request != nullptr && request->inner->done()) ? 1 : 0;
}

int nmad_wait(nmad_cluster_t* cluster, nmad_request_t* request) {
  if (cluster == nullptr || request == nullptr) return -1;
  cluster->impl->wait(request->inner);
  return request->inner->status().is_ok() ? 0 : 1;
}

size_t nmad_received_bytes(const nmad_request_t* request) {
  if (request == nullptr ||
      request->inner->kind() != nmad::core::Request::Kind::kRecv) {
    return 0;
  }
  return static_cast<const nmad::core::RecvRequest*>(request->inner)
      ->received_bytes();
}

void nmad_request_free(nmad_request_t* request) {
  if (request == nullptr) return;
  request->owner->release(request->inner);
  delete request;
}

double nmad_now_us(const nmad_cluster_t* cluster) {
  return cluster->impl->now();
}

}  // extern "C"
