// Ablation: the optimization window (§3.1).
//
// Submits bursts of N small messages and reports how many physical
// packets the engine actually emitted and the per-message cost. Because
// election is just-in-time (the window drains whenever the NIC goes
// idle), a burst collapses to very few packets: the first message ships
// alone while the rest accumulate behind the busy NIC.
#include <cstdio>
#include <vector>

#include "nmad/api/session.hpp"
#include "util/buffer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

struct BurstResult {
  double total_us;
  uint64_t packets;
  uint64_t prebuilt;
  uint64_t max_window;
};

BurstResult run_burst(int messages, size_t msg_bytes,
                      const std::string& strategy,
                      size_t prebuild_backlog = 0) {
  api::ClusterOptions options;
  options.core.strategy = strategy;
  options.core.prebuild_backlog_chunks = prebuild_backlog;
  api::Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<std::vector<std::byte>> bufs(messages);
  std::vector<core::Request*> reqs;
  for (int i = 0; i < messages; ++i) {
    bufs[i].resize(msg_bytes);
    reqs.push_back(b.irecv(cluster.gate(1, 0), core::Tag(i),
                           {bufs[i].data(), msg_bytes}));
  }
  std::vector<std::byte> payload(msg_bytes);
  uint64_t max_window = 0;
  for (int i = 0; i < messages; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), core::Tag(i),
                           util::ConstBytes{payload.data(), msg_bytes}));
    max_window = std::max<uint64_t>(max_window,
                                    a.window_size(cluster.gate(0, 1)));
  }
  cluster.wait_all(reqs);
  BurstResult r{cluster.now(), a.stats().packets_sent,
                a.stats().packets_prebuilt, max_window};
  for (auto* req : reqs) {
    (req->kind() == core::Request::Kind::kSend ? a : b).release(req);
  }
  return r;
}

}  // namespace

int main() {
  util::Table table({"burst", "policy", "packets", "prebuilt", "max_window",
                     "total_us", "us_per_msg"});
  for (int burst : {1, 2, 4, 8, 16, 32, 64}) {
    struct Policy {
      const char* label;
      const char* strategy;
      size_t prebuild;
    };
    for (const Policy& p :
         {Policy{"default", "default", 0}, Policy{"aggreg-jit", "aggreg", 0},
          Policy{"aggreg-prearm", "aggreg", 2}}) {
      const BurstResult r = run_burst(burst, 64, p.strategy, p.prebuild);
      table.add_row({std::to_string(burst), p.label,
                     std::to_string(r.packets), std::to_string(r.prebuilt),
                     std::to_string(r.max_window),
                     util::format_fixed(r.total_us, 2),
                     util::format_fixed(r.total_us / burst, 2)});
    }
  }
  std::printf("## Window ablation — burst of 64-byte messages, MX rail\n");
  table.print();
  std::printf(
      "\nreading: with `aggreg`, packets grows like O(1)..O(burst/limit)\n"
      "while `default` emits one packet per message; max_window shows the\n"
      "backlog that just-in-time election found when the NIC went idle.\n"
      "`aggreg-prearm` is the §3.2 alternative policy: elections run early\n"
      "while the NIC is busy (the prebuilt column), trading aggregation\n"
      "opportunity for zero election cost on the idle path.\n\n");
  return 0;
}
