// Extension: the same raw ping-pong across every transfer layer the
// paper's §4 lists (GM/Myrinet, MX/Myrinet, Elan/Quadrics, SISCI/SCI,
// TCP/Ethernet) — evidence that strategies are "independent from the
// network technology" and "can be directly combined with any network
// protocol supported by NewMadeleine".
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

}  // namespace

int main() {
  const std::vector<std::string> nets = {"mx", "gm", "quadrics", "sci",
                                         "tcp"};
  util::Table table({"network", "lat_4B_us", "bw_2M_MBps", "rdv", "gather",
                     "agg16seg_gain_%"});
  for (const std::string& net : nets) {
    baseline::MpiStack mad = bench::make_stack("madmpi", net);
    const double lat = bench::pingpong_latency_us(mad, 4, 10);
    const double bw = bench::pingpong_bandwidth_mbps(mad, 2u << 20, 3);

    simnet::NicProfile profile;
    simnet::nic_profile_by_name(net, &profile);

    // Aggregation gain vs the no-optimization strategy on this fabric.
    core::CoreConfig plain;
    plain.strategy = "default";
    baseline::MpiStack mad_agg = bench::make_stack("madmpi", net);
    baseline::MpiStack mad_plain = bench::make_stack("madmpi", net, plain);
    const double t_agg = bench::multiseg_latency_us(mad_agg, 16, 4, 5);
    const double t_plain = bench::multiseg_latency_us(mad_plain, 16, 4, 5);

    table.add_row({net, util::format_fixed(lat, 2),
                   util::format_fixed(bw, 0), profile.rdma ? "yes" : "no",
                   profile.has_gather() ? "yes" : "no",
                   util::format_fixed((t_plain - t_agg) / t_plain * 100.0,
                                      1)});
  }
  std::printf("## Extension — MAD-MPI across every §4 transfer layer\n");
  table.print();
  std::printf(
      "\nreading: one engine, one strategy set, five fabrics; the\n"
      "aggregation gain column shows the optimizer paying off everywhere\n"
      "(per-message costs dominate hardest on GM and TCP).\n\n");
  return 0;
}
