// Ablation: scheduling strategy comparison (§3.2 — "several optimization
// tactics may be available").
//
// Runs the Figure-3 multi-segment workload through each built-in strategy
// so the contribution of each optimization is visible in isolation:
//   default          — no optimization (synchronous library behaviour)
//   aggreg           — aggregation bounded by the rendezvous threshold
//   aggreg_extended  — aggregation bounded by the physical packet size
//   split_balance    — aggreg + multi-rail splitting (1 rail here → same)
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

void run_case(const std::string& net, int segments) {
  const std::vector<std::string> strategies = {
      "default", "aggreg", "aggreg_extended", "split_balance"};

  std::vector<std::string> header = {"seg_size"};
  for (const auto& s : strategies) header.push_back(s + "_us");
  header.push_back("aggreg_speedup");
  util::Table table(header);

  for (uint64_t size : util::doubling_sizes(4, 4096)) {
    std::vector<std::string> row = {util::format_size(size)};
    std::vector<double> lats;
    for (const auto& strat : strategies) {
      core::CoreConfig config;
      config.strategy = strat;
      baseline::MpiStack stack = bench::make_stack("madmpi", net, config);
      lats.push_back(bench::multiseg_latency_us(stack, segments, size, 10));
    }
    for (double lat : lats) row.push_back(util::format_fixed(lat, 2));
    row.push_back(util::format_fixed(lats[0] / lats[1], 2));
    table.add_row(std::move(row));
  }

  std::printf("## Strategy ablation — %d segments over %s\n", segments,
              net.c_str());
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("net", "mx", "network profile");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 2;
  }
  run_case(flags.get("net"), 8);
  run_case(flags.get("net"), 16);
  return 0;
}
