// Figure 4 — "Indexed datatype": ping-pong exchanging arrays of an indexed
// datatype made of a 64-byte block followed by a 256 KB block, total data
// 256 KB – 2 MB. MAD-MPI sends each block as its own engine request (small
// blocks aggregate with the rendezvous control of the large blocks, large
// blocks land zero-copy); the baselines pack/unpack through contiguous
// bounce buffers. Prints the §5.3 headline gains (~70 % vs MPICH, ~50 % vs
// OpenMPI over MX; ~70 % vs MPICH over Quadrics).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

constexpr size_t kSmall = 64;
constexpr size_t kLarge = 256 * 1024;

void run_network(const std::string& net, bool csv) {
  const std::vector<std::string> impls = bench::impls_for_net(net);

  std::vector<std::string> header = {"total_size", "elements"};
  for (const std::string& impl : impls) header.push_back(impl + "_us");
  for (size_t i = 1; i < impls.size(); ++i) {
    header.push_back("gain_vs_" + impls[i] + "_%");
  }
  util::Table table(header);

  std::vector<double> max_gains(impls.size(), 0.0);
  for (int count = 1; count <= 8; count *= 2) {
    const size_t total = static_cast<size_t>(count) * (kSmall + kLarge);
    std::vector<std::string> row = {util::format_size(total),
                                    std::to_string(count)};
    std::vector<double> times;
    for (const std::string& impl : impls) {
      baseline::MpiStack stack = bench::make_stack(impl, net);
      times.push_back(
          bench::datatype_transfer_us(stack, count, kSmall, kLarge));
    }
    for (double t : times) row.push_back(util::format_fixed(t, 1));
    for (size_t i = 1; i < impls.size(); ++i) {
      const double gain = bench::gain_percent(times[0], times[i]);
      max_gains[i] = std::max(max_gains[i], gain);
      row.push_back(util::format_fixed(gain, 1));
    }
    table.add_row(std::move(row));
  }

  std::printf("## Figure 4 — indexed datatype (64B + 256KB blocks) over %s\n",
              net.c_str());
  if (csv) {
    table.print_csv(stdout);
  } else {
    table.print();
  }
  for (size_t i = 1; i < impls.size(); ++i) {
    std::printf("§5.3 headline: MAD-MPI gains up to %.0f%% vs %s over %s\n",
                max_gains[i], impls[i].c_str(), net.c_str());
  }
  std::printf("\n");
}

// Machine-readable artifact (BENCH_fig4.json): one row per
// (net, impl, element count) with the transfer time and MAD-MPI's gain
// over that impl. Virtual-clock timing — reproducible run-to-run.
void run_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig4_datatype\",\n  \"unit\": \"us\",\n"
               "  \"small_block\": %zu,\n  \"large_block\": %zu,\n"
               "  \"rows\": [",
               kSmall, kLarge);
  bool first = true;
  for (const std::string& net : {std::string("mx"), std::string("quadrics")}) {
    const std::vector<std::string> impls = bench::impls_for_net(net);
    for (int count = 1; count <= 8; count *= 2) {
      std::vector<double> times;
      for (const std::string& impl : impls) {
        baseline::MpiStack stack = bench::make_stack(impl, net);
        times.push_back(
            bench::datatype_transfer_us(stack, count, kSmall, kLarge));
      }
      for (size_t i = 0; i < impls.size(); ++i) {
        std::fprintf(
            f,
            "%s\n    {\"net\": \"%s\", \"impl\": \"%s\", \"elements\": %d, "
            "\"total_size\": %zu, \"time_us\": %.3f, "
            "\"madmpi_gain_pct\": %.1f}",
            first ? "" : ",", net.c_str(), impls[i].c_str(), count,
            static_cast<size_t>(count) * (kSmall + kLarge), times[i],
            i == 0 ? 0.0 : bench::gain_percent(times[0], times[i]));
        first = false;
      }
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("net", "all", "network: mx, quadrics, or all");
  flags.define_bool("csv", false, "emit CSV instead of a table");
  flags.define("json", "",
               "write a machine-readable artifact (time + gain per net x "
               "impl x element-count row) to this path and exit");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    flags.print_help(argv[0]);
    return 2;
  }
  if (!flags.get("json").empty()) {
    run_json(flags.get("json"));
    return 0;
  }
  const std::string net = flags.get("net");
  const bool csv = flags.get_bool("csv");
  if (net == "all") {
    run_network("mx", csv);
    run_network("quadrics", csv);
  } else {
    run_network(net, csv);
  }
  return 0;
}
