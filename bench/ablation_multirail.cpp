// Ablation: multi-rail rendezvous splitting (§4 "multi-rails" strategy,
// §7 "greedy load-balancing strategies over multiple NICs").
//
// Transfers one large block between two nodes connected by BOTH a
// Myri-10G and a Quadrics rail: pinned to each single rail, then with
// split_balance striping across the two heterogeneous NICs. Shows the
// achieved aggregate bandwidth and where splitting stops paying (small
// bodies are deliberately not split).
#include <cstdio>
#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

double transfer_us(const std::string& strategy, size_t bytes,
                   core::RailIndex pin) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  options.core.strategy = strategy;
  api::Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<std::byte> src(bytes), dst(bytes);
  util::fill_pattern({src.data(), bytes}, 1);

  core::SendHints hints;
  hints.pinned_rail = pin;

  auto* recv = b.irecv(cluster.gate(1, 0), 1,
                       util::MutableBytes{dst.data(), bytes});
  auto* send = a.isend(cluster.gate(0, 1), 1,
                       core::SourceLayout::contiguous({src.data(), bytes}),
                       hints);
  cluster.wait(send);
  cluster.wait(recv);
  NMAD_ASSERT(util::check_pattern({dst.data(), bytes}, 1));
  const double elapsed = cluster.now();
  a.release(send);
  b.release(recv);
  return elapsed;
}

}  // namespace

int main() {
  util::Table table({"size", "mx_only_us", "quadrics_only_us", "split_us",
                     "split_MBps", "speedup_vs_mx"});
  for (uint64_t size : util::doubling_sizes(64 * 1024, 16u << 20)) {
    const double t_mx = transfer_us("aggreg", size, 0);
    const double t_qs = transfer_us("aggreg", size, 1);
    const double t_split =
        transfer_us("split_balance", size, core::kAnyRail);
    table.add_row({util::format_size(size), util::format_fixed(t_mx, 1),
                   util::format_fixed(t_qs, 1),
                   util::format_fixed(t_split, 1),
                   util::format_fixed(static_cast<double>(size) / t_split, 0),
                   util::format_fixed(t_mx / t_split, 2)});
  }
  std::printf("## Multi-rail ablation — one bulk transfer, MX + Quadrics\n");
  table.print();
  std::printf(
      "\nreading: the two rails sum to ~2085 MB/s nominal; splitting\n"
      "approaches that for large bodies and falls back to a single rail\n"
      "below the minimum slice size.\n\n");
  return 0;
}
