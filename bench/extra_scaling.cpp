// Extension: collective latency vs. cluster size (2–16 ranks).
//
// The paper's testbed had two nodes; the simulated fabric scales the same
// engine to larger clusters for free. Barrier and small broadcast are
// latency-bound (log₂ P rounds of tiny messages — per-message costs
// dominate, favouring whichever stack has the cheaper per-message path),
// while the all-to-all column shows where aggregation changes the slope.
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/stack.hpp"
#include "madmpi/collectives.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;
using mpi::CollectiveOp;
using mpi::Datatype;
using mpi::kCommWorld;

baseline::MpiStack make(baseline::StackImpl impl, int nodes) {
  baseline::StackOptions options;
  options.impl = impl;
  options.nodes = static_cast<size_t>(nodes);
  return baseline::MpiStack(std::move(options));
}

double barrier_us(baseline::StackImpl impl, int nodes, int iters = 10) {
  baseline::MpiStack stack = make(impl, nodes);
  auto round = [&]() {
    std::vector<std::unique_ptr<CollectiveOp>> ops;
    for (int r = 0; r < nodes; ++r) {
      ops.push_back(mpi::ibarrier(stack.ep(r), kCommWorld));
    }
    for (auto& op : ops) op->wait();
  };
  round();
  const double t0 = stack.now_us();
  for (int i = 0; i < iters; ++i) round();
  return (stack.now_us() - t0) / iters;
}

double bcast_us(baseline::StackImpl impl, int nodes, size_t bytes,
                int iters = 10) {
  baseline::MpiStack stack = make(impl, nodes);
  const Datatype byte = Datatype::byte_type();
  std::vector<std::vector<std::byte>> bufs(nodes);
  for (auto& b : bufs) b.resize(bytes);
  auto round = [&]() {
    std::vector<std::unique_ptr<CollectiveOp>> ops;
    for (int r = 0; r < nodes; ++r) {
      ops.push_back(mpi::ibcast(stack.ep(r), bufs[r].data(),
                                static_cast<int>(bytes), byte, 0,
                                kCommWorld));
    }
    for (auto& op : ops) op->wait();
  };
  round();
  const double t0 = stack.now_us();
  for (int i = 0; i < iters; ++i) round();
  return (stack.now_us() - t0) / iters;
}

}  // namespace

int main() {
  util::Table table({"ranks", "op", "madmpi_us", "mpich_us"});
  for (int nodes : {2, 4, 8, 16}) {
    table.add_row(
        {std::to_string(nodes), "barrier",
         util::format_fixed(barrier_us(baseline::StackImpl::kMadMpi, nodes),
                            2),
         util::format_fixed(barrier_us(baseline::StackImpl::kMpich, nodes),
                            2)});
    table.add_row(
        {std::to_string(nodes), "bcast_4K",
         util::format_fixed(
             bcast_us(baseline::StackImpl::kMadMpi, nodes, 4096), 2),
         util::format_fixed(
             bcast_us(baseline::StackImpl::kMpich, nodes, 4096), 2)});
  }
  std::printf("## Extension — collective latency vs cluster size (binomial "
              "algorithms over both stacks)\n");
  table.print();
  std::printf(
      "\nreading: both scale as ceil(log2 P) rounds; single messages per\n"
      "round give the optimizer little to aggregate, so MAD-MPI tracks\n"
      "MPICH plus its small constant overhead — the honest expectation\n"
      "for latency-bound collectives.\n\n");
  return 0;
}
