// Engine micro-costs in REAL host nanoseconds (google-benchmark).
//
// Everything else in bench/ reports virtual simulated time; this binary
// measures the actual CPU cost of the engine's hot-path primitives —
// window operations, packet building, wire parsing, strategy election,
// layout scatter, datatype flattening — the code a production port would
// run on the critical path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "madmpi/datatype.hpp"
#include "nmad/api/session.hpp"
#include "nmad/core/packet_builder.hpp"
#include "nmad/core/strategy.hpp"
#include "nmad/core/wire_format.hpp"
#include "nmad/strategies/builtin.hpp"
#include "util/buffer.hpp"
#include "util/intrusive_list.hpp"
#include "util/pool.hpp"

namespace {

using namespace nmad;
using core::ChunkKind;
using core::OutChunk;

// Nearest-rank quantile over the per-repetition results. Reported only
// when run with --benchmark_repetitions=N (the bench.sh entry point uses
// N=25): the aggregate rows then carry mean/median/stddev plus these —
// the tail view of the hot-path cost.
double quantile_of(const std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

void AddTailStats(benchmark::internal::Benchmark* b) {
  b->ComputeStatistics(
       "p99", [](const std::vector<double>& v) { return quantile_of(v, 0.99); })
      ->ComputeStatistics(
          "p999",
          [](const std::vector<double>& v) { return quantile_of(v, 0.999); })
      ->ComputeStatistics("max", [](const std::vector<double>& v) {
        return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
      });
}

void BM_WindowPushPop(benchmark::State& state) {
  util::IntrusiveList<OutChunk, &OutChunk::hook> window;
  std::vector<OutChunk> chunks(64);
  for (auto _ : state) {
    for (auto& c : chunks) window.push_back(c);
    while (!window.empty()) benchmark::DoNotOptimize(&window.pop_front());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WindowPushPop)->Apply(AddTailStats);

void BM_ChunkPoolCycle(benchmark::State& state) {
  util::ObjectPool<OutChunk> pool(128);
  for (auto _ : state) {
    OutChunk* c = pool.acquire();
    benchmark::DoNotOptimize(c);
    pool.release(c);
  }
}
BENCHMARK(BM_ChunkPoolCycle)->Apply(AddTailStats);

void BM_PacketBuild(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  std::vector<std::byte> payload(256);
  std::vector<OutChunk> chunks(n);
  for (size_t i = 0; i < n; ++i) {
    chunks[i].kind = ChunkKind::kData;
    chunks[i].tag = i;
    chunks[i].seq = 0;
    chunks[i].total = 256;
    chunks[i].payload = {payload.data(), payload.size()};
  }
  for (auto _ : state) {
    core::PacketBuilder builder(64 * 1024, 0);
    for (auto& c : chunks) builder.add(&c);
    benchmark::DoNotOptimize(builder.finalize());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PacketBuild)->Arg(1)->Arg(8)->Arg(32)->Apply(AddTailStats);

void BM_PacketDecode(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  std::vector<std::byte> payload(256);
  util::ByteBuffer packet;
  util::WireWriter w(packet);
  core::encode_packet_header(w, static_cast<uint16_t>(n));
  for (size_t i = 0; i < n; ++i) {
    core::encode_data_header(w, 0, i, 0, 256);
    w.bytes(payload.data(), payload.size());
  }
  for (auto _ : state) {
    size_t seen = 0;
    auto st = core::decode_packet(packet.view(),
                                  [&](const core::WireChunk& c) {
                                    benchmark::DoNotOptimize(&c);
                                    ++seen;
                                  });
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(seen);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PacketDecode)->Arg(1)->Arg(8)->Arg(32)->Apply(AddTailStats);

void BM_StrategyElection(benchmark::State& state) {
  // Cost of one just-in-time election over a populated window — the
  // §5.1 "extra operations on the critical path".
  const auto n = static_cast<size_t>(state.range(0));
  api::Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Gate& gate = a.gate(cluster.gate(0, 1));
  auto strategy = core::make_strategy("aggreg");
  std::vector<std::byte> payload(128);
  std::vector<OutChunk> chunks(n);
  for (size_t i = 0; i < n; ++i) {
    chunks[i].kind = ChunkKind::kData;
    chunks[i].tag = i;
    chunks[i].total = 128;
    chunks[i].payload = {payload.data(), payload.size()};
  }
  for (auto _ : state) {
    for (auto& c : chunks) gate.sched.window.push_back(c);
    core::PacketBuilder builder(32 * 1024, 0);
    benchmark::DoNotOptimize(
        strategy->pack(a.scheduler(), gate, a.rail_info(0), builder));
    gate.sched.window.clear();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StrategyElection)->Arg(1)->Arg(8)->Arg(64)->Apply(AddTailStats);

void BM_LayoutScatter(benchmark::State& state) {
  const auto block = static_cast<size_t>(state.range(0));
  const size_t total = 64 * 1024;
  std::vector<std::byte> storage(total * 2);
  std::vector<core::DestLayout::Block> blocks;
  for (size_t off = 0; off < total; off += block) {
    blocks.push_back({off, {storage.data() + 2 * off, block}});
  }
  core::DestLayout layout = core::DestLayout::scattered(std::move(blocks));
  std::vector<std::byte> src(total);
  for (auto _ : state) {
    layout.scatter(0, {src.data(), total});
  }
  state.SetBytesProcessed(state.iterations() * total);
}
BENCHMARK(BM_LayoutScatter)->Arg(64)->Arg(1024)->Arg(65536)->Apply(AddTailStats);

void BM_DatatypeFlatten(benchmark::State& state) {
  const auto blocks = static_cast<int>(state.range(0));
  std::vector<int> lens(blocks, 64);
  std::vector<ptrdiff_t> displs(blocks);
  for (int i = 0; i < blocks; ++i) displs[i] = i * 128;
  for (auto _ : state) {
    auto t = mpi::Datatype::hindexed(lens, displs,
                                     mpi::Datatype::byte_type());
    benchmark::DoNotOptimize(t.blocks().data());
  }
}
BENCHMARK(BM_DatatypeFlatten)->Arg(2)->Arg(16)->Arg(128)->Apply(AddTailStats);

void BM_SourceLayoutFromDatatype(benchmark::State& state) {
  const auto count = static_cast<int>(state.range(0));
  const std::vector<int> lens = {64, 4096};
  const std::vector<ptrdiff_t> displs = {0, 128};
  const auto t =
      mpi::Datatype::hindexed(lens, displs, mpi::Datatype::byte_type());
  std::vector<std::byte> buf(static_cast<size_t>(t.extent()) * count);
  for (auto _ : state) {
    auto layout = t.source_layout(buf.data(), count);
    benchmark::DoNotOptimize(layout.total());
  }
}
BENCHMARK(BM_SourceLayoutFromDatatype)->Arg(1)->Arg(16)->Apply(AddTailStats);

// Whole-stack virtual ping-pong per real-CPU cost: how much host time one
// simulated round trip burns (simulator efficiency, not protocol time).
void BM_SimulatedRoundTrip(benchmark::State& state) {
  api::Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);
  std::vector<std::byte> out(1024), in(1024);
  core::Tag tag = 0;
  for (auto _ : state) {
    auto* r = b.irecv(cluster.gate(1, 0), tag, {in.data(), in.size()});
    auto* s = a.isend(cluster.gate(0, 1), tag,
                      util::ConstBytes{out.data(), out.size()});
    cluster.wait(r);
    cluster.wait(s);
    a.release(s);
    b.release(r);
    ++tag;
  }
}
BENCHMARK(BM_SimulatedRoundTrip)->Apply(AddTailStats);

}  // namespace

BENCHMARK_MAIN();
