// Figure 2 — "Raw point-to-point ping-pong": latency and bandwidth of a
// single-segment ping-pong, 4 B – 2 MB, MAD-MPI vs MPICH vs OpenMPI over
// MX/Myri-10G (2a, 2b) and MAD-MPI vs MPICH over Elan/Quadrics (2c, 2d).
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

void run_network(const std::string& net, uint64_t min_size,
                 uint64_t max_size, bool csv, bool plot,
                 double fault_drop, uint64_t fault_seed, bool reliable,
                 bool credits) {
  // On a lossy fabric only MAD-MPI (reliability layer) can finish the
  // exchange; the baseline MPIs assume a lossless interconnect.
  const std::vector<std::string> impls =
      fault_drop > 0.0 ? std::vector<std::string>{"madmpi"}
                       : bench::impls_for_net(net);
  core::CoreConfig core_config;
  simnet::FaultProfile fault;
  core_config.reliability = reliable || fault_drop > 0.0;
  // Ping-pong receives are always pre-posted, so credits are granted but
  // never contended: this measures the scheme's zero-overhead claim.
  core_config.flow_control = credits;
  if (fault_drop > 0.0) {
    fault.frame_drop_prob = fault_drop;
    fault.bulk_drop_prob = fault_drop;
    fault.seed = fault_seed;
  }

  std::vector<std::string> header = {"size"};
  for (const std::string& impl : impls) header.push_back(impl + "_lat_us");
  for (const std::string& impl : impls) header.push_back(impl + "_bw_MBps");
  util::Table table(header);

  std::vector<std::vector<std::pair<double, double>>> lat_series(
      impls.size());
  std::vector<std::vector<std::pair<double, double>>> bw_series(
      impls.size());
  for (uint64_t size : util::doubling_sizes(min_size, max_size)) {
    std::vector<std::string> row = {util::format_size(size)};
    std::vector<double> lats;
    for (const std::string& impl : impls) {
      baseline::MpiStack stack =
          bench::make_stack(impl, net, core_config, fault);
      lats.push_back(bench::pingpong_latency_us(stack, size));
    }
    for (size_t i = 0; i < lats.size(); ++i) {
      row.push_back(util::format_fixed(lats[i], 2));
      lat_series[i].emplace_back(static_cast<double>(size), lats[i]);
      bw_series[i].emplace_back(static_cast<double>(size),
                                static_cast<double>(size) / lats[i]);
    }
    for (double lat : lats) {
      row.push_back(util::format_fixed(static_cast<double>(size) / lat, 1));
    }
    table.add_row(std::move(row));
  }

  if (fault_drop > 0.0) {
    std::printf("## Figure 2 — raw ping-pong over %s "
                "(lossy: drop=%.3f seed=%llu)\n",
                net.c_str(), fault_drop,
                static_cast<unsigned long long>(fault_seed));
  } else {
    std::printf("## Figure 2 — raw ping-pong over %s%s\n", net.c_str(),
                credits ? " (credit flow control on)" : "");
  }
  if (csv) {
    table.print_csv(stdout);
  } else {
    table.print();
  }
  if (plot) {
    const char markers[] = {'m', 'p', 'o'};
    util::AsciiPlot lat_plot("latency (µs) vs message size — " + net);
    util::AsciiPlot bw_plot("bandwidth (MB/s) vs message size — " + net);
    for (size_t i = 0; i < impls.size(); ++i) {
      lat_plot.add_series(impls[i], markers[i % 3], lat_series[i]);
      bw_plot.add_series(impls[i], markers[i % 3], bw_series[i]);
    }
    std::printf("\n");
    lat_plot.render();
    std::printf("\n");
    bw_plot.render();
  }
  std::printf("\n");
}

// Flapping-rail scenario: MAD-MPI on two rails, rail 1 going dark for
// 500µs every 3ms. The heartbeat monitor declares it dead (300µs of
// silence), traffic fails over to rail 0, and the probe/probation
// handshake revives it in the bright gap — over and over, while the
// ping-pong keeps running. The table compares against the same two-rail
// setup with no blackouts, so the penalty column isolates what the
// flapping (and the recovery machinery) actually costs.
void run_rail_flap(const std::string& net, uint64_t min_size,
                   uint64_t max_size, bool csv) {
  core::CoreConfig cfg;
  cfg.rail_health = true;  // implies reliability
  cfg.ack_timeout_us = 200.0;
  cfg.ack_delay_us = 5.0;
  cfg.rail_dead_after = 0;
  cfg.max_retries = 20;
  cfg.heartbeat_interval_us = 50.0;
  cfg.suspect_after_us = 150.0;
  cfg.dead_after_us = 300.0;
  cfg.probe_interval_us = 100.0;
  cfg.probation_replies = 2;

  simnet::NicProfile base_rail;
  if (!simnet::nic_profile_by_name(net, &base_rail)) {
    std::fprintf(stderr, "unknown network: %s\n", net.c_str());
    std::exit(2);
  }
  simnet::NicProfile flap_rail = base_rail;
  for (int i = 0; i < 4000; ++i) {
    const double begin = 2500.0 + 3000.0 * i;
    flap_rail.fault.blackouts.push_back({begin, begin + 500.0});
  }

  util::Table table({"size", "steady_lat_us", "flap_lat_us",
                     "steady_bw_MBps", "flap_bw_MBps", "penalty_pct"});
  for (uint64_t size : util::doubling_sizes(min_size, max_size)) {
    double lat[2] = {0.0, 0.0};
    for (int flap = 0; flap < 2; ++flap) {
      baseline::StackOptions options;
      options.impl = baseline::StackImpl::kMadMpi;
      options.nic = base_rail;
      options.core = cfg;
      options.extra_rails = {flap ? flap_rail : base_rail};
      baseline::MpiStack stack(std::move(options));
      lat[flap] = bench::pingpong_latency_us(stack, size);
      // Settle before the stack destructs: beacons re-arm forever, and a
      // packet mid-flight at teardown would leak its pool chunk.
      for (int r = 0; r < 2; ++r) {
        static_cast<mpi::MadMpiEndpoint&>(stack.ep(r))
            .engine()
            .stop_health_monitors();
      }
      while (stack.world().run_one()) {
      }
    }
    table.add_row({util::format_size(size), util::format_fixed(lat[0], 2),
                   util::format_fixed(lat[1], 2),
                   util::format_fixed(static_cast<double>(size) / lat[0], 1),
                   util::format_fixed(static_cast<double>(size) / lat[1], 1),
                   util::format_fixed(
                       (lat[1] - lat[0]) / lat[0] * 100.0, 1)});
  }

  std::printf("## Flapping-rail ping-pong over %s "
              "(rail 1 dark 500us every 3ms, madmpi only)\n",
              net.c_str());
  if (csv) {
    table.print_csv(stdout);
  } else {
    table.print();
  }
  std::printf("\n");
}

// Machine-readable artifact: every (net, impl, size) row re-measured
// with per-round timing so the JSON carries the tail (p99/p999/max)
// alongside the mean — the file CI checks in as BENCH_fig2.json.
void run_json(const std::string& path, uint64_t min_size, uint64_t max_size,
              int iters) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig2_pingpong\",\n  \"unit\": \"us\",\n"
               "  \"iters\": %d,\n  \"rows\": [",
               iters);
  bool first = true;
  for (const std::string& net : {std::string("mx"), std::string("quadrics")}) {
    for (const std::string& impl : bench::impls_for_net(net)) {
      for (uint64_t size : util::doubling_sizes(min_size, max_size)) {
        baseline::MpiStack stack = bench::make_stack(impl, net);
        const util::QuantileDigest d =
            bench::pingpong_latency_digest(stack, size, iters);
        std::fprintf(
            f,
            "%s\n    {\"net\": \"%s\", \"impl\": \"%s\", \"size\": %llu, "
            "\"mean_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f, "
            "\"max_us\": %.3f, \"bw_MBps\": %.1f}",
            first ? "" : ",", net.c_str(), impl.c_str(),
            static_cast<unsigned long long>(size), d.mean(), d.p99(),
            d.p999(), d.max(),
            d.mean() > 0.0 ? static_cast<double>(size) / d.mean() : 0.0);
        first = false;
      }
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("net", "all", "network: mx, quadrics, or all");
  flags.define("min", "4", "smallest message size");
  flags.define("max", "2M", "largest message size");
  flags.define_bool("csv", false, "emit CSV instead of a table");
  flags.define_bool("plot", false, "render ASCII log-log figures");
  flags.define("fault-drop", "0",
               "frame/bulk drop probability (> 0 enables the reliability "
               "layer and restricts to madmpi)");
  flags.define("fault-seed", "1", "deterministic fault-injection seed");
  flags.define_bool("reliable", false,
                    "enable the ack/retransmit layer even with no faults "
                    "(measures its zero-loss overhead)");
  flags.define_bool("credits", false,
                    "enable receiver-driven credit flow control (implies "
                    "the reliability layer; uncontended here, so measures "
                    "its zero-overhead claim)");
  flags.define_bool("rail-flap", false,
                    "two-rail madmpi-only run with rail 1 flapping "
                    "(heartbeat death + epoch-fenced revival mid-bench); "
                    "compares against the same setup with no blackouts");
  flags.define("json", "",
               "write a machine-readable artifact (mean/p99/p999/max per "
               "net x impl x size row) to this path and exit");
  flags.define("iters", "200",
               "per-round samples in --json mode (tail sharpness)");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    flags.print_help(argv[0]);
    return 2;
  }

  const std::string net = flags.get("net");
  const uint64_t min_size = flags.get_size("min");
  const uint64_t max_size = flags.get_size("max");
  const bool csv = flags.get_bool("csv");
  const bool plot = flags.get_bool("plot");
  const double fault_drop = flags.get_double("fault-drop");
  const auto fault_seed = static_cast<uint64_t>(flags.get_int("fault-seed"));
  const bool reliable = flags.get_bool("reliable");
  const bool credits = flags.get_bool("credits");

  if (!flags.get("json").empty()) {
    run_json(flags.get("json"), min_size, max_size,
             flags.get_int("iters"));
    return 0;
  }
  if (flags.get_bool("rail-flap")) {
    run_rail_flap(net == "all" ? "mx" : net, min_size, max_size, csv);
    return 0;
  }
  if (net == "all") {
    run_network("mx", min_size, max_size, csv, plot, fault_drop,
                fault_seed, reliable, credits);
    run_network("quadrics", min_size, max_size, csv, plot, fault_drop,
                fault_seed, reliable, credits);
  } else {
    run_network(net, min_size, max_size, csv, plot, fault_drop, fault_seed,
                reliable, credits);
  }
  return 0;
}
