#include "bench/common.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/buffer.hpp"

namespace nmad::bench {
namespace {

using baseline::MpiStack;
using mpi::Comm;
using mpi::Datatype;
using mpi::Endpoint;
using mpi::kCommWorld;

// One ping-pong round trip: A sends `size` bytes to B, B echoes. Returns
// nothing; the caller reads the virtual clock around it.
void one_roundtrip(MpiStack& stack, std::byte* a_buf, std::byte* b_buf,
                   size_t size) {
  Endpoint& a = stack.ep(0);
  Endpoint& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();
  const int n = static_cast<int>(size);

  auto* ra = a.irecv(a_buf, n, byte, 1, 2, kCommWorld);
  auto* rb = b.irecv(b_buf, n, byte, 0, 1, kCommWorld);
  auto* sa = a.isend(a_buf, n, byte, 1, 1, kCommWorld);
  b.wait(rb);
  // B turns the message around the moment its receive completes.
  auto* sb = b.isend(b_buf, n, byte, 0, 2, kCommWorld);
  a.wait(ra);
  a.wait(sa);
  b.wait(sb);
  a.free_request(ra);
  a.free_request(sa);
  b.free_request(rb);
  b.free_request(sb);
}

}  // namespace

double pingpong_latency_us(MpiStack& stack, size_t size, int iters,
                           int warmup) {
  std::vector<std::byte> a_buf(size == 0 ? 1 : size);
  std::vector<std::byte> b_buf(a_buf.size());
  util::fill_pattern({a_buf.data(), size}, 17);

  for (int i = 0; i < warmup; ++i) {
    one_roundtrip(stack, a_buf.data(), b_buf.data(), size);
  }
  const double t0 = stack.now_us();
  for (int i = 0; i < iters; ++i) {
    one_roundtrip(stack, a_buf.data(), b_buf.data(), size);
  }
  const double rtt = (stack.now_us() - t0) / iters;
  return rtt / 2.0;
}

util::QuantileDigest pingpong_latency_digest(MpiStack& stack, size_t size,
                                             int iters, int warmup) {
  std::vector<std::byte> a_buf(size == 0 ? 1 : size);
  std::vector<std::byte> b_buf(a_buf.size());
  util::fill_pattern({a_buf.data(), size}, 17);

  for (int i = 0; i < warmup; ++i) {
    one_roundtrip(stack, a_buf.data(), b_buf.data(), size);
  }
  util::QuantileDigest digest;
  for (int i = 0; i < iters; ++i) {
    const double t0 = stack.now_us();
    one_roundtrip(stack, a_buf.data(), b_buf.data(), size);
    digest.add((stack.now_us() - t0) / 2.0);
  }
  return digest;
}

double pingpong_bandwidth_mbps(MpiStack& stack, size_t size, int iters,
                               int warmup) {
  const double oneway_us = pingpong_latency_us(stack, size, iters, warmup);
  return static_cast<double>(size) / oneway_us;  // bytes/µs == MB/s
}

double multiseg_latency_us(MpiStack& stack, int segments, size_t seg_size,
                           int iters, int warmup) {
  Endpoint& a = stack.ep(0);
  Endpoint& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();
  const int n = static_cast<int>(seg_size);

  // One communicator per segment, duplicated identically on both sides —
  // the paper's proof that MAD-MPI optimizes across communicators.
  std::vector<Comm> comms_a, comms_b;
  for (int s = 0; s < segments; ++s) {
    comms_a.push_back(a.comm_dup(kCommWorld));
    comms_b.push_back(b.comm_dup(kCommWorld));
  }

  std::vector<std::vector<std::byte>> a_bufs(segments), b_bufs(segments);
  for (int s = 0; s < segments; ++s) {
    a_bufs[s].resize(seg_size);
    b_bufs[s].resize(seg_size);
    util::fill_pattern({a_bufs[s].data(), seg_size}, 100 + s);
  }

  auto roundtrip = [&]() {
    std::vector<mpi::Request*> reqs;
    std::vector<mpi::Request*> b_recvs;
    // Pre-post everything receivable, then fire the pings.
    for (int s = 0; s < segments; ++s) {
      reqs.push_back(a.irecv(a_bufs[s].data(), n, byte, 1, 2, comms_a[s]));
      b_recvs.push_back(
          b.irecv(b_bufs[s].data(), n, byte, 0, 1, comms_b[s]));
    }
    for (int s = 0; s < segments; ++s) {
      reqs.push_back(a.isend(a_bufs[s].data(), n, byte, 1, 1, comms_a[s]));
    }
    for (auto* r : b_recvs) b.wait(r);
    // The full series has landed; B mirrors it back.
    for (int s = 0; s < segments; ++s) {
      reqs.push_back(b.isend(b_bufs[s].data(), n, byte, 0, 2, comms_b[s]));
    }
    for (auto* r : reqs) a.wait(r);  // wait() pumps the shared world
    for (auto* r : b_recvs) b.free_request(r);
    for (auto* r : reqs) a.free_request(r);
  };

  for (int i = 0; i < warmup; ++i) roundtrip();
  const double t0 = stack.now_us();
  for (int i = 0; i < iters; ++i) roundtrip();
  return (stack.now_us() - t0) / iters / 2.0;
}

double datatype_transfer_us(MpiStack& stack, int count, size_t small_block,
                            size_t large_block, int iters, int warmup) {
  Endpoint& a = stack.ep(0);
  Endpoint& b = stack.ep(1);

  // One element: [small][gap][large], exactly the §5.3 shape. The gap
  // makes the type genuinely non-contiguous.
  const size_t gap = 512;
  const std::vector<int> lens = {static_cast<int>(small_block),
                                 static_cast<int>(large_block)};
  const std::vector<ptrdiff_t> displs = {
      0, static_cast<ptrdiff_t>(small_block + gap)};
  const mpi::Datatype element =
      mpi::Datatype::hindexed(lens, displs, mpi::Datatype::byte_type());

  const size_t footprint =
      static_cast<size_t>(element.extent()) * static_cast<size_t>(count);
  std::vector<std::byte> a_buf(footprint), b_buf(footprint);
  util::fill_pattern({a_buf.data(), footprint}, 5);

  auto roundtrip = [&]() {
    auto* ra = a.irecv(a_buf.data(), count, element, 1, 2, kCommWorld);
    auto* rb = b.irecv(b_buf.data(), count, element, 0, 1, kCommWorld);
    auto* sa = a.isend(a_buf.data(), count, element, 1, 1, kCommWorld);
    b.wait(rb);
    auto* sb = b.isend(b_buf.data(), count, element, 0, 2, kCommWorld);
    a.wait(ra);
    a.wait(sa);
    b.wait(sb);
    a.free_request(ra);
    a.free_request(sa);
    b.free_request(rb);
    b.free_request(sb);
  };

  for (int i = 0; i < warmup; ++i) roundtrip();
  const double t0 = stack.now_us();
  for (int i = 0; i < iters; ++i) roundtrip();
  return (stack.now_us() - t0) / iters / 2.0;
}

baseline::MpiStack make_stack(const std::string& impl,
                              const std::string& net,
                              const core::CoreConfig& core_config,
                              const simnet::FaultProfile& fault) {
  baseline::StackOptions options;
  if (!baseline::stack_impl_from_name(impl, &options.impl)) {
    std::fprintf(stderr, "unknown MPI implementation: %s\n", impl.c_str());
    std::exit(2);
  }
  if (!simnet::nic_profile_by_name(net, &options.nic)) {
    std::fprintf(stderr, "unknown network: %s\n", net.c_str());
    std::exit(2);
  }
  options.nic.fault = fault;
  options.core = core_config;
  return baseline::MpiStack(std::move(options));
}

std::vector<std::string> impls_for_net(const std::string& net) {
  // The paper runs MadMPI/MPICH/OpenMPI over MX, and MadMPI/MPICH over
  // Quadrics (no OpenMPI-Quadrics port existed).
  if (net == "mx" || net == "myri10g" || net == "mx-myri10g") {
    return {"madmpi", "mpich", "openmpi"};
  }
  return {"madmpi", "mpich"};
}

double gain_percent(double ours_us, double theirs_us) {
  if (theirs_us <= 0.0) return 0.0;
  return (theirs_us - ours_us) / theirs_us * 100.0;
}

}  // namespace nmad::bench
