// Scale benchmark — the discrete-event core at thousands of ranks.
//
// Unlike the figure benches (which report virtual microseconds off the
// simulated clock), this one measures the *simulator itself*: host
// events/sec through the scheduler. Three sections:
//
//   1. queue micro — the calendar queue vs ReferenceHeapQueue (the old
//      std::priority_queue implementation, kept verbatim) on identical
//      deterministic op streams, at pending-set sizes matching 4-, 64-
//      and 1k-rank populations. Two shapes: "hold" (pop one, push one —
//      no cancels) and "churn" (the reliability ack-timer shape: 95% of
//      timers are cancelled before they fire, which drives the old
//      queue's O(n) cancelled-id bookkeeping quadratic).
//   2. end-to-end — the 1024-rank hypercube alltoall and the 10k-flow
//      incast from the `scale` test tier, timed wall-clock with engine
//      events/sec and the allocation counters that must stay flat.
//   3. soak — a sustained 64-rank neighbour exchange over a long virtual
//      window, proving steady-state throughput holds with zero hot-path
//      allocations round after round.
//
// --json=PATH writes the machine-readable artifact CI checks in as
// BENCH_scale.json; the `speedup` field of the 1k-rank churn row is the
// headline the acceptance gate reads (>= 5x over the heap baseline).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/event_queue.hpp"
#include "util/buffer.hpp"
#include "util/cli.hpp"
#include "util/inline_fn.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;
using simnet::EventId;
using simnet::EventQueue;
using simnet::ReferenceHeapQueue;
using simnet::SimTime;

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// -------------------------------------------------------------------------
// Queue micro workloads. Both are templates so the exact same op stream
// (same seed, same draws) runs on either implementation.
// -------------------------------------------------------------------------

// Hold: keep `pending` events outstanding; each op pops the minimum and
// schedules a replacement a short exponential-ish stride ahead. This is
// the cancel-free steady state of a lossless run.
template <class Queue>
uint64_t run_hold(Queue& q, size_t pending, uint64_t ops, uint64_t seed) {
  util::Rng rng(seed);
  SimTime now = 0.0;
  uint64_t fired = 0;
  for (size_t i = 0; i < pending; ++i) {
    q.schedule_at(rng.next_double() * 100.0, [&fired] { ++fired; });
  }
  for (uint64_t i = 0; i < ops; ++i) {
    q.run_one(&now);
    q.schedule_at(now + 0.5 + rng.next_double() * 100.0,
                  [&fired] { ++fired; });
  }
  while (q.run_one(&now)) {
  }
  return fired;
}

// Churn: the reliability shape. Every op arms an ack timer ~200µs out;
// 95% of the time the ack "arrives" and the newest timer is cancelled
// immediately, the rest are left to fire. The queue is drained down to
// `pending` as it grows. On the heap baseline every cancelled shell
// still surfaces at the top and pays an O(n) erase from the sorted
// cancelled-id vector.
template <class Queue>
uint64_t run_churn(Queue& q, size_t pending, uint64_t ops, uint64_t seed) {
  util::Rng rng(seed);
  SimTime now = 0.0;
  uint64_t fired = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    const EventId id = q.schedule_at(now + 100.0 + rng.next_double() * 200.0,
                                     [&fired] { ++fired; });
    if (rng.next_bool(0.95)) q.cancel(id);
    while (q.size() > pending) q.run_one(&now);
  }
  while (q.run_one(&now)) {
  }
  return fired;
}

struct MicroRow {
  const char* shape;
  size_t pending;
  size_t ranks_equiv;  // pending set a cluster of this size carries
  double heap_evps = 0.0;
  double cal_evps = 0.0;
  double speedup = 0.0;
};

MicroRow run_micro(const char* shape, size_t pending, size_t ranks_equiv,
                   uint64_t ops) {
  MicroRow row{shape, pending, ranks_equiv};
  const bool churn = std::string(shape) == "churn";
  uint64_t fired_heap = 0;
  uint64_t fired_cal = 0;
  {
    ReferenceHeapQueue q;
    const auto t0 = std::chrono::steady_clock::now();
    fired_heap = churn ? run_churn(q, pending, ops, /*seed=*/42)
                       : run_hold(q, pending, ops, /*seed=*/42);
    row.heap_evps = static_cast<double>(ops) / wall_seconds(t0);
  }
  {
    EventQueue q;
    const auto t0 = std::chrono::steady_clock::now();
    fired_cal = churn ? run_churn(q, pending, ops, /*seed=*/42)
                      : run_hold(q, pending, ops, /*seed=*/42);
    row.cal_evps = static_cast<double>(ops) / wall_seconds(t0);
  }
  if (fired_heap != fired_cal) {
    std::fprintf(stderr,
                 "scale: micro divergence (%s/%zu): heap fired %llu, "
                 "calendar fired %llu\n",
                 shape, pending,
                 static_cast<unsigned long long>(fired_heap),
                 static_cast<unsigned long long>(fired_cal));
    std::exit(1);
  }
  row.speedup = row.cal_evps / row.heap_evps;
  return row;
}

// -------------------------------------------------------------------------
// End-to-end scenarios (the same shapes as tests/nmad/test_scale.cpp,
// minus the oracle — correctness lives in the test tier; this measures).
// -------------------------------------------------------------------------

struct EndToEndRow {
  const char* name;
  size_t ranks = 0;
  size_t messages = 0;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double evps = 0.0;
  uint64_t steady_allocs = 0;  // pool grows + queue rebuilds + fn spills
};

uint64_t alloc_marks(api::Cluster& cluster) {
  uint64_t marks = util::inline_fn_heap_allocs();
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    const core::Core::AllocStats a =
        cluster.core(static_cast<simnet::NodeId>(n)).alloc_stats();
    marks += a.chunk_pool_grows + a.bulk_pool_grows + a.send_pool_grows +
             a.recv_pool_grows;
  }
  const nmad::runtime::TimerStats q = cluster.core(0).alloc_stats().queue;
  return marks + q.node_slabs + q.resizes;
}

void alltoall_round(api::Cluster& cluster, size_t ranks, size_t round,
                    size_t bytes, std::vector<std::byte>& out,
                    std::vector<std::byte>& in) {
  const simnet::NodeId bit = simnet::NodeId{1} << round;
  for (simnet::NodeId r = 0; r < ranks; ++r) {
    if (r < (r ^ bit)) cluster.ensure_gate(r, r ^ bit);
  }
  std::vector<core::Request*> reqs;
  reqs.reserve(ranks * 2);
  std::vector<std::pair<simnet::NodeId, core::Request*>> owners;
  owners.reserve(ranks * 2);
  for (simnet::NodeId r = 0; r < ranks; ++r) {
    const simnet::NodeId partner = r ^ bit;
    core::Request* recv = cluster.core(r).irecv(
        cluster.gate(r, partner), round,
        util::MutableBytes{in.data() + r * bytes, bytes});
    core::Request* send = cluster.core(r).isend(
        cluster.gate(r, partner), round,
        util::ConstBytes{out.data() + r * bytes, bytes});
    reqs.push_back(recv);
    reqs.push_back(send);
    owners.emplace_back(r, recv);
    owners.emplace_back(r, send);
  }
  cluster.wait_all(reqs);
  for (auto& [node, req] : owners) cluster.core(node).release(req);
}

EndToEndRow run_alltoall(size_t ranks, size_t rounds, size_t bytes) {
  EndToEndRow row{"alltoall_hypercube", ranks};
  api::ClusterOptions options;
  options.nodes = ranks;
  options.full_mesh = false;
  api::Cluster cluster(std::move(options));
  std::vector<std::byte> out(ranks * bytes);
  std::vector<std::byte> in(ranks * bytes);
  util::fill_pattern({out.data(), out.size()}, 7);

  // First round warms every pool and slab; the measured rounds are the
  // steady state the allocation gate covers.
  alltoall_round(cluster, ranks, 0, bytes, out, in);
  const uint64_t marks = alloc_marks(cluster);
  const uint64_t ev0 = cluster.core(0).alloc_stats().queue.executed;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t round = 1; round < rounds; ++round) {
    alltoall_round(cluster, ranks, round, bytes, out, in);
  }
  const double secs = wall_seconds(t0);
  row.messages = ranks * (rounds - 1);
  row.events = cluster.core(0).alloc_stats().queue.executed - ev0;
  row.wall_ms = secs * 1e3;
  row.evps = static_cast<double>(row.events) / secs;
  row.steady_allocs = alloc_marks(cluster) - marks;
  return row;
}

EndToEndRow run_incast(size_t senders, size_t flows_per_sender,
                       size_t bytes) {
  EndToEndRow row{"incast", senders + 1};
  api::ClusterOptions options;
  options.nodes = senders + 1;
  options.full_mesh = false;
  api::Cluster cluster(std::move(options));
  for (simnet::NodeId s = 1; s <= senders; ++s) cluster.ensure_gate(s, 0);
  std::vector<std::byte> out(bytes);
  std::vector<std::byte> in(senders * flows_per_sender * bytes);
  util::fill_pattern({out.data(), out.size()}, 11);

  // Warm with one flow per sender, then measure the full fan-in.
  auto burst = [&](size_t flows) {
    std::vector<core::Request*> reqs;
    reqs.reserve(senders * flows * 2);
    std::vector<std::pair<simnet::NodeId, core::Request*>> owners;
    owners.reserve(senders * flows * 2);
    for (simnet::NodeId s = 1; s <= senders; ++s) {
      for (size_t k = 0; k < flows; ++k) {
        const core::Tag tag = (core::Tag(s) << 32) | k;
        core::Request* recv = cluster.core(0).irecv(
            cluster.gate(0, s), tag,
            util::MutableBytes{
                in.data() + ((s - 1) * flows_per_sender + k) * bytes,
                bytes});
        reqs.push_back(recv);
        owners.emplace_back(0, recv);
      }
    }
    for (simnet::NodeId s = 1; s <= senders; ++s) {
      for (size_t k = 0; k < flows; ++k) {
        const core::Tag tag = (core::Tag(s) << 32) | k;
        core::Request* send = cluster.core(s).isend(
            cluster.gate(s, 0), tag, util::ConstBytes{out.data(), bytes});
        reqs.push_back(send);
        owners.emplace_back(s, send);
      }
    }
    cluster.wait_all(reqs);
    for (auto& [node, req] : owners) cluster.core(node).release(req);
  };

  // The full fan-in is the steady state here: one complete burst sizes
  // node 0's pools for 10k outstanding receives, the second is measured.
  burst(flows_per_sender);
  const uint64_t marks = alloc_marks(cluster);
  const uint64_t ev0 = cluster.core(0).alloc_stats().queue.executed;
  const auto t0 = std::chrono::steady_clock::now();
  burst(flows_per_sender);
  const double secs = wall_seconds(t0);
  row.messages = senders * flows_per_sender;
  row.events = cluster.core(0).alloc_stats().queue.executed - ev0;
  row.wall_ms = secs * 1e3;
  row.evps = static_cast<double>(row.events) / secs;
  row.steady_allocs = alloc_marks(cluster) - marks;
  return row;
}

// Soak: 64 ranks exchange with a rotating partner, round after round,
// until the simulated clock has advanced past `soak_us`. Sustained
// throughput with flat allocation counters is the point.
EndToEndRow run_soak(double soak_us) {
  constexpr size_t kRanks = 64;
  constexpr size_t kBytes = 1024;
  EndToEndRow row{"soak_rotating_exchange", kRanks};
  api::Cluster cluster(api::ClusterOptions{.nodes = kRanks});
  std::vector<std::byte> out(kBytes);
  std::vector<std::byte> in(kRanks * kBytes);
  util::fill_pattern({out.data(), out.size()}, 13);

  auto round = [&](uint64_t r) {
    // Rotating pairing: rank i exchanges with i ^ shift, shift walking
    // 1..kRanks-1, so every link is eventually exercised.
    const simnet::NodeId shift = 1 + (r % (kRanks - 1));
    std::vector<core::Request*> reqs;
    reqs.reserve(kRanks * 2);
    std::vector<std::pair<simnet::NodeId, core::Request*>> owners;
    owners.reserve(kRanks * 2);
    for (simnet::NodeId i = 0; i < kRanks; ++i) {
      const simnet::NodeId j = i ^ shift;
      if (j >= kRanks) continue;
      core::Request* recv =
          cluster.core(i).irecv(cluster.gate(i, j), r,
                                util::MutableBytes{
                                    in.data() + i * kBytes, kBytes});
      core::Request* send = cluster.core(i).isend(
          cluster.gate(i, j), r, util::ConstBytes{out.data(), kBytes});
      reqs.push_back(recv);
      reqs.push_back(send);
      owners.emplace_back(i, recv);
      owners.emplace_back(i, send);
    }
    cluster.wait_all(reqs);
    for (auto& [node, req] : owners) cluster.core(node).release(req);
  };

  for (uint64_t r = 0; r < 4; ++r) round(r);  // warm every pairing class
  const uint64_t marks = alloc_marks(cluster);
  const uint64_t ev0 = cluster.core(0).alloc_stats().queue.executed;
  const double vt0 = cluster.now();
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t r = 4;
  while (cluster.now() - vt0 < soak_us) round(r++);
  const double secs = wall_seconds(t0);
  row.messages = (r - 4) * kRanks;
  row.events = cluster.core(0).alloc_stats().queue.executed - ev0;
  row.wall_ms = secs * 1e3;
  row.evps = static_cast<double>(row.events) / secs;
  row.steady_allocs = alloc_marks(cluster) - marks;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("ops", "300000", "ops per queue-micro measurement");
  flags.define("ranks", "1024", "alltoall rank count (power of two)");
  flags.define("soak-us", "20000",
               "virtual µs the soak scenario must sustain (~5k barrier "
               "rounds at the default; raise for a long-haul run)");
  flags.define("json", "",
               "write the machine-readable artifact (BENCH_scale.json) "
               "to this path");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    flags.print_help(argv[0]);
    return 2;
  }
  const auto ops = static_cast<uint64_t>(flags.get_int("ops"));
  const auto ranks = static_cast<size_t>(flags.get_int("ranks"));
  size_t rounds = 0;
  while ((size_t{1} << rounds) < ranks) ++rounds;
  const double soak_us = flags.get_double("soak-us");

  // Pending-set sizes observed on 4-, 64- and 1k-rank clusters (a rank
  // keeps a handful of in-flight events; reliability timers multiply it).
  std::vector<MicroRow> micro;
  for (const char* shape : {"hold", "churn"}) {
    micro.push_back(run_micro(shape, 128, 4, ops));
    micro.push_back(run_micro(shape, 2048, 64, ops));
    micro.push_back(run_micro(shape, 32768, 1024, ops));
  }

  std::vector<EndToEndRow> e2e;
  e2e.push_back(run_alltoall(ranks, rounds, 2048));
  e2e.push_back(run_incast(64, 157, 512));
  e2e.push_back(run_soak(soak_us));

  util::Table mtab({"shape", "pending", "ranks_equiv", "heap_ev/s",
                    "calendar_ev/s", "speedup"});
  for (const MicroRow& m : micro) {
    mtab.add_row({m.shape, std::to_string(m.pending),
                  std::to_string(m.ranks_equiv),
                  util::format_fixed(m.heap_evps, 0),
                  util::format_fixed(m.cal_evps, 0),
                  util::format_fixed(m.speedup, 2)});
  }
  std::printf("## Scale — calendar queue vs heap baseline (%llu ops)\n",
              static_cast<unsigned long long>(ops));
  mtab.print();

  util::Table etab({"scenario", "ranks", "messages", "events", "wall_ms",
                    "ev/s", "steady_allocs"});
  for (const EndToEndRow& e : e2e) {
    etab.add_row({e.name, std::to_string(e.ranks),
                  std::to_string(e.messages), std::to_string(e.events),
                  util::format_fixed(e.wall_ms, 1),
                  util::format_fixed(e.evps, 0),
                  std::to_string(e.steady_allocs)});
  }
  std::printf("\n## Scale — end-to-end scenarios\n");
  etab.print();

  bool ok = true;
  for (const EndToEndRow& e : e2e) {
    if (e.steady_allocs != 0) {
      std::fprintf(stderr,
                   "scale: %s allocated during steady state (%llu marks)\n",
                   e.name, static_cast<unsigned long long>(e.steady_allocs));
      ok = false;
    }
  }

  const std::string json = flags.get("json");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"scale\",\n  \"ops\": %llu,\n"
                 "  \"rows\": [",
                 static_cast<unsigned long long>(ops));
    bool first = true;
    for (const MicroRow& m : micro) {
      std::fprintf(f,
                   "%s\n    {\"section\": \"queue_micro\", \"shape\": "
                   "\"%s\", \"pending\": %zu, \"ranks_equiv\": %zu, "
                   "\"heap_events_per_sec\": %.0f, "
                   "\"calendar_events_per_sec\": %.0f, \"speedup\": %.2f}",
                   first ? "" : ",", m.shape, m.pending, m.ranks_equiv,
                   m.heap_evps, m.cal_evps, m.speedup);
      first = false;
    }
    for (const EndToEndRow& e : e2e) {
      std::fprintf(f,
                   "%s\n    {\"section\": \"end_to_end\", \"scenario\": "
                   "\"%s\", \"ranks\": %zu, \"messages\": %zu, "
                   "\"events\": %llu, \"wall_ms\": %.1f, "
                   "\"events_per_sec\": %.0f, \"steady_allocs\": %llu}",
                   first ? "" : ",", e.name, e.ranks, e.messages,
                   static_cast<unsigned long long>(e.events), e.wall_ms,
                   e.evps, static_cast<unsigned long long>(e.steady_allocs));
      first = false;
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return ok ? 0 : 1;
}
