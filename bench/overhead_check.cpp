// §5.1 headline check — "MAD-MPI introduces a constant overhead of less
// than 0.5 µs and reaches 1155 MB/s in bandwidth over MYRI-10G and
// 835 MB/s over QUADRICS."
//
// Prints the small-message latency overhead of MAD-MPI versus MPICH on
// both networks (it must be a small, roughly size-independent constant in
// the eager range) and the peak bandwidths at 2 MB.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

void run_network(const std::string& net) {
  util::Table table({"size", "madmpi_us", "mpich_us", "overhead_us"});
  double min_ovh = 1e9, max_ovh = -1e9;
  for (uint64_t size : util::doubling_sizes(4, 4096)) {
    baseline::MpiStack mad = bench::make_stack("madmpi", net);
    baseline::MpiStack mpich = bench::make_stack("mpich", net);
    const double lat_mad = bench::pingpong_latency_us(mad, size);
    const double lat_mpich = bench::pingpong_latency_us(mpich, size);
    const double ovh = lat_mad - lat_mpich;
    min_ovh = std::min(min_ovh, ovh);
    max_ovh = std::max(max_ovh, ovh);
    table.add_row({util::format_size(size), util::format_fixed(lat_mad, 2),
                   util::format_fixed(lat_mpich, 2),
                   util::format_fixed(ovh, 2)});
  }

  baseline::MpiStack mad = bench::make_stack("madmpi", net);
  const double peak_bw = bench::pingpong_bandwidth_mbps(mad, 2 << 20);

  std::printf("## §5.1 — MAD-MPI overhead over %s\n", net.c_str());
  table.print();
  std::printf(
      "overhead range: [%.2f, %.2f] µs (paper: constant, < 0.5 µs)\n",
      min_ovh, max_ovh);
  std::printf("MAD-MPI peak bandwidth at 2M: %.0f MB/s (paper: %s MB/s)\n\n",
              peak_bw, net == "quadrics" ? "835" : "1155");
}

}  // namespace

void run_checksum_cost() {
  // Cost of the optional wire checksum (a debug feature, not part of the
  // paper's protocol): latency delta with checksums on.
  util::Table table({"size", "plain_us", "checksum_us", "delta_us"});
  for (uint64_t size : {uint64_t{4}, uint64_t{1024}, uint64_t{16384}}) {
    baseline::MpiStack plain = bench::make_stack("madmpi", "mx");
    core::CoreConfig with_checksum;
    with_checksum.wire_checksum = true;
    baseline::MpiStack checked =
        bench::make_stack("madmpi", "mx", with_checksum);
    const double t_plain = bench::pingpong_latency_us(plain, size);
    const double t_checked = bench::pingpong_latency_us(checked, size);
    table.add_row({util::format_size(size),
                   util::format_fixed(t_plain, 2),
                   util::format_fixed(t_checked, 2),
                   util::format_fixed(t_checked - t_plain, 2)});
  }
  std::printf("## Extra — wire-checksum cost (debug feature)\n");
  table.print();
  std::printf("\n");
}

int main() {
  run_network("mx");
  run_network("quadrics");
  run_checksum_cost();
  return 0;
}
