// Extension experiment (beyond the paper's figures): overlapped
// small-block all-to-alls on 2–8 ranks.
//
// §7 anticipates real-application impact of aggressive aggregation.
// A single all-to-all sends exactly one block per peer, so there is
// nothing to aggregate and MAD-MPI simply pays its scheduler overhead
// (reported in the depth=1 row — the honest negative case). Composite
// applications, however, keep several operations in flight: with a few
// overlapped all-to-alls (depth > 1), each pair's blocks share the same
// gate and the window coalesces them — per-peer messages collapse and
// MAD-MPI pulls ahead, exactly the multi-flow effect of §2.
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/stack.hpp"
#include "madmpi/collectives.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;
using mpi::CollectiveOp;
using mpi::Datatype;
using mpi::kCommWorld;

double alltoall_us(baseline::StackImpl impl, int nodes, size_t block,
                   int depth, int iters) {
  baseline::StackOptions options;
  options.impl = impl;
  options.nodes = static_cast<size_t>(nodes);
  baseline::MpiStack stack(std::move(options));
  const Datatype byte = Datatype::byte_type();

  // `depth` independent all-to-alls kept in flight simultaneously.
  std::vector<std::vector<std::byte>> send(nodes * depth),
      recv(nodes * depth);
  for (int i = 0; i < nodes * depth; ++i) {
    send[i].resize(block * nodes);
    recv[i].resize(block * nodes);
    util::fill_pattern({send[i].data(), send[i].size()}, i);
  }

  auto round = [&]() {
    std::vector<std::unique_ptr<CollectiveOp>> ops;
    for (int d = 0; d < depth; ++d) {
      for (int r = 0; r < nodes; ++r) {
        const int i = d * nodes + r;
        ops.push_back(mpi::ialltoall(stack.ep(r), send[i].data(),
                                     recv[i].data(),
                                     static_cast<int>(block), byte,
                                     kCommWorld));
      }
    }
    for (auto& op : ops) op->wait();
  };

  round();  // warmup
  const double t0 = stack.now_us();
  for (int i = 0; i < iters; ++i) round();
  return (stack.now_us() - t0) / iters;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("block", "64", "bytes per rank pair");
  flags.define("iters", "10", "iterations");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 2;
  }
  const size_t block = flags.get_size("block");
  const int iters = static_cast<int>(flags.get_int("iters"));

  util::Table table({"ranks", "depth", "madmpi_us", "mpich_us",
                     "openmpi_us", "gain_vs_mpich_%"});
  for (int nodes : {2, 4, 8}) {
    for (int depth : {1, 4, 8}) {
      const double mad = alltoall_us(baseline::StackImpl::kMadMpi, nodes,
                                     block, depth, iters);
      const double mpich = alltoall_us(baseline::StackImpl::kMpich, nodes,
                                       block, depth, iters);
      const double ompi = alltoall_us(baseline::StackImpl::kOpenMpi, nodes,
                                      block, depth, iters);
      table.add_row({std::to_string(nodes), std::to_string(depth),
                     util::format_fixed(mad, 2),
                     util::format_fixed(mpich, 2),
                     util::format_fixed(ompi, 2),
                     util::format_fixed((mpich - mad) / mpich * 100.0, 1)});
    }
  }
  std::printf("## Extension — %s-byte-block all-to-all, `depth` operations "
              "in flight (not a paper figure; §7 outlook)\n",
              util::format_size(block).c_str());
  table.print();
  std::printf(
      "\nreading: depth=1 offers nothing to aggregate (MAD-MPI pays its\n"
      "scheduler, the Fig-2 situation); deeper overlap turns per-peer\n"
      "message streams into aggregation fodder and MAD-MPI wins.\n\n");
  return 0;
}
