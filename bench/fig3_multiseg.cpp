// Figure 3 — "Performance of a ping-pong program featuring multi-segments
// messages": 8- and 16-segment series of independent isends on separate
// communicators, per-segment size 4 B – 16 KB (MX) / 8 KB (Quadrics).
// Also prints the §5.2 headline gains (up to ~70 % over MX, ~50 % over
// Quadrics).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

void run_case(const std::string& net, int segments, uint64_t min_size,
              uint64_t max_size, bool csv, double* best_gain) {
  const std::vector<std::string> impls = bench::impls_for_net(net);

  std::vector<std::string> header = {"seg_size"};
  for (const std::string& impl : impls) header.push_back(impl + "_lat_us");
  header.push_back("gain_vs_best_%");
  util::Table table(header);

  for (uint64_t size : util::doubling_sizes(min_size, max_size)) {
    std::vector<std::string> row = {util::format_size(size)};
    std::vector<double> lats;
    for (const std::string& impl : impls) {
      baseline::MpiStack stack = bench::make_stack(impl, net);
      lats.push_back(bench::multiseg_latency_us(stack, segments, size));
    }
    for (double lat : lats) row.push_back(util::format_fixed(lat, 2));
    // Gain of MAD-MPI (index 0) over the best competitor.
    const double best_other = *std::min_element(lats.begin() + 1, lats.end());
    const double gain = bench::gain_percent(lats[0], best_other);
    *best_gain = std::max(*best_gain, gain);
    row.push_back(util::format_fixed(gain, 1));
    table.add_row(std::move(row));
  }

  std::printf("## Figure 3 — %d-segment ping-pong over %s\n", segments,
              net.c_str());
  if (csv) {
    table.print_csv(stdout);
  } else {
    table.print();
  }
  std::printf("\n");
}

void run_network(const std::string& net, bool csv) {
  const uint64_t max_size = net == "quadrics" ? 8 * 1024 : 16 * 1024;
  double best_gain = 0.0;
  run_case(net, 8, 4, max_size, csv, &best_gain);
  run_case(net, 16, 4, max_size, csv, &best_gain);
  std::printf("§5.2 headline: MAD-MPI is up to %.0f%% faster than the best "
              "competing MPI over %s (paper: up to %s)\n\n",
              best_gain, net.c_str(),
              net == "quadrics" ? "50%" : "70%");
}

// Machine-readable artifact (BENCH_fig3.json): one row per
// (net, segments, impl, seg_size) with the latency and MAD-MPI's gain
// over the best competitor. Virtual-clock timing — reproducible
// run-to-run.
void run_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig3_multiseg\",\n  \"unit\": \"us\",\n"
               "  \"rows\": [");
  bool first = true;
  for (const std::string& net : {std::string("mx"), std::string("quadrics")}) {
    const uint64_t max_size = net == "quadrics" ? 8 * 1024 : 16 * 1024;
    const std::vector<std::string> impls = bench::impls_for_net(net);
    for (int segments : {8, 16}) {
      for (uint64_t size : util::doubling_sizes(4, max_size)) {
        std::vector<double> lats;
        for (const std::string& impl : impls) {
          baseline::MpiStack stack = bench::make_stack(impl, net);
          lats.push_back(bench::multiseg_latency_us(stack, segments, size));
        }
        const double best_other =
            *std::min_element(lats.begin() + 1, lats.end());
        for (size_t i = 0; i < impls.size(); ++i) {
          std::fprintf(
              f,
              "%s\n    {\"net\": \"%s\", \"segments\": %d, \"impl\": "
              "\"%s\", \"seg_size\": %llu, \"lat_us\": %.3f, "
              "\"gain_vs_best_pct\": %.1f}",
              first ? "" : ",", net.c_str(), segments, impls[i].c_str(),
              static_cast<unsigned long long>(size), lats[i],
              i == 0 ? bench::gain_percent(lats[0], best_other) : 0.0);
          first = false;
        }
      }
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("net", "all", "network: mx, quadrics, or all");
  flags.define_bool("csv", false, "emit CSV instead of a table");
  flags.define("json", "",
               "write a machine-readable artifact (lat + gain per net x "
               "segments x impl x size row) to this path and exit");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    flags.print_help(argv[0]);
    return 2;
  }
  if (!flags.get("json").empty()) {
    run_json(flags.get("json"));
    return 0;
  }
  const std::string net = flags.get("net");
  const bool csv = flags.get_bool("csv");
  if (net == "all") {
    run_network("mx", csv);
    run_network("quadrics", csv);
  } else {
    run_network(net, csv);
  }
  return 0;
}
