// Shared benchmark runners for the paper-figure reproductions.
//
// All timings are virtual microseconds read off the simulated clock, so
// results are exactly reproducible run-to-run and machine-to-machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/stack.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nmad::bench {

// One-way latency (µs) of a standard single-segment ping-pong of `size`
// bytes, averaged over `iters` round trips after `warmup` rounds.
double pingpong_latency_us(baseline::MpiStack& stack, size_t size,
                           int iters = 20, int warmup = 3);

// The same ping-pong, but every round timed individually into a
// streaming digest — the tail view (p99/p999/max) of the experiment the
// mean above flattens. More iterations make the high quantiles sharper.
util::QuantileDigest pingpong_latency_digest(baseline::MpiStack& stack,
                                             size_t size, int iters = 200,
                                             int warmup = 3);

// Bandwidth in MB/s derived from the same ping-pong.
double pingpong_bandwidth_mbps(baseline::MpiStack& stack, size_t size,
                               int iters = 20, int warmup = 3);

// One-way latency (µs) of a multi-segment ping-pong: `segments`
// independent isend operations of `seg_size` bytes each, every segment on
// its own communicator (§5.2). The reply mirrors the request.
double multiseg_latency_us(baseline::MpiStack& stack, int segments,
                           size_t seg_size, int iters = 20, int warmup = 3);

// One-way transfer time (µs) of a ping-pong exchanging `count` elements of
// the paper's indexed datatype: a 64-byte block and a 256 KB block,
// separated by a gap (§5.3).
double datatype_transfer_us(baseline::MpiStack& stack, int count,
                            size_t small_block = 64,
                            size_t large_block = 256 * 1024, int iters = 5,
                            int warmup = 1);

// Builds a fresh stack for (impl name, net name); aborts on bad names.
// A non-default `fault` makes the fabric lossy; only MAD-MPI (with
// CoreConfig::reliability) survives that, so callers pairing faults with
// the baseline MPIs get what they deserve.
baseline::MpiStack make_stack(const std::string& impl,
                              const std::string& net,
                              const core::CoreConfig& core_config = {},
                              const simnet::FaultProfile& fault = {});

// Which implementations the paper compares on each network.
std::vector<std::string> impls_for_net(const std::string& net);

// Percentage gain of `ours` over `theirs` (positive = ours faster).
double gain_percent(double ours_us, double theirs_us);

}  // namespace nmad::bench
