// Ablation: the eager/rendezvous threshold (§3.2 mentions running the
// optimizer "once the packet backlog has reached a predefined threshold";
// §4 collects "the threshold for the rendez-vous protocol" per driver).
//
// Sweeps the rendezvous threshold override and measures a single-segment
// ping-pong at sizes around the switch point, showing the latency cliff
// when a message flips from one-copy eager to RTS/CTS zero-copy, and the
// bandwidth cost of setting the threshold too high.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("net", "mx", "network profile");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 2;
  }
  const std::string net = flags.get("net");

  const std::vector<uint64_t> thresholds = {8 * 1024, 16 * 1024, 32 * 1024,
                                            64 * 1024 - 64};
  const std::vector<uint64_t> sizes = {4 * 1024,  8 * 1024,  16 * 1024,
                                       24 * 1024, 32 * 1024, 48 * 1024,
                                       60 * 1024};

  std::vector<std::string> header = {"msg_size"};
  for (uint64_t t : thresholds) {
    header.push_back("thr_" + util::format_size(t) + "_us");
  }
  util::Table table(header);

  for (uint64_t size : sizes) {
    std::vector<std::string> row = {util::format_size(size)};
    for (uint64_t thr : thresholds) {
      core::CoreConfig config;
      config.rdv_threshold_override = thr;
      baseline::MpiStack stack = bench::make_stack("madmpi", net, config);
      row.push_back(util::format_fixed(
          bench::pingpong_latency_us(stack, size, 10), 2));
    }
    table.add_row(std::move(row));
  }

  std::printf("## Threshold ablation — one-way latency over %s by "
              "rendezvous threshold\n",
              net.c_str());
  table.print();
  std::printf(
      "\nreading: below the threshold the message is eager (one receive\n"
      "copy, cheap for small sizes); above it, RTS/CTS adds a round trip\n"
      "but the body moves zero-copy — the crossover justifies the per-\n"
      "driver threshold the transfer layer reports.\n\n");
  return 0;
}
