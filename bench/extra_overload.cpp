// Extension: receiver overload — credit flow control vs. a free-running
// sender.
//
// Three senders each push 40 × 4 KiB of eager traffic at one receiver
// whose receives are posted 20 ms late: every byte that arrives early has
// nowhere to go but the unexpected store. Without flow control the store
// absorbs the whole burst (480 KiB against a 128 KiB budget); with
// receiver-driven credits the peak never exceeds the budget and the
// excess is held at the sender (window stalls) or demoted to rendezvous.
// Nothing is ever dropped either way — the question is *where* the
// backlog lives.
#include <cstdio>
#include <utility>
#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

constexpr size_t kSenders = 3;
constexpr size_t kMsgs = 40;
constexpr size_t kMsgBytes = 4 * 1024;
constexpr double kPostDelayUs = 20000.0;

struct OverloadRow {
  core::CoreStats receiver;
  core::CoreStats sender;
  uint64_t frames_dropped = 0;
  double end_time_us = 0.0;
  bool data_ok = true;
};

OverloadRow run_overload(core::CoreConfig config) {
  api::ClusterOptions options;
  options.nodes = kSenders + 1;
  options.rails = {simnet::mx_myri10g_profile()};
  options.core = std::move(config);
  api::Cluster cluster(std::move(options));

  core::Core& rx = cluster.core(0);
  std::vector<std::vector<std::vector<std::byte>>> in(kSenders),
      out(kSenders);
  std::vector<std::pair<core::Core*, core::Request*>> owned;
  std::vector<core::Request*> sends;
  std::vector<core::Request*> recvs;
  for (size_t s = 0; s < kSenders; ++s) {
    in[s].resize(kMsgs);
    out[s].resize(kMsgs);
    core::Core& tx = cluster.core(static_cast<simnet::NodeId>(s + 1));
    const core::GateId g = cluster.gate(static_cast<simnet::NodeId>(s + 1), 0);
    for (size_t i = 0; i < kMsgs; ++i) {
      in[s][i].resize(kMsgBytes);
      out[s][i].resize(kMsgBytes);
      util::fill_pattern({out[s][i].data(), kMsgBytes},
                         static_cast<int>(s * kMsgs + i));
      core::Request* r = tx.isend(
          g, core::Tag(i), util::ConstBytes{out[s][i].data(), kMsgBytes});
      owned.emplace_back(&tx, r);
      sends.push_back(r);
    }
  }
  cluster.world().after(kPostDelayUs, [&]() {
    for (size_t s = 0; s < kSenders; ++s) {
      const core::GateId g = cluster.gate(0, static_cast<simnet::NodeId>(s + 1));
      for (size_t i = 0; i < kMsgs; ++i) {
        core::Request* r =
            rx.irecv(g, core::Tag(i), {in[s][i].data(), kMsgBytes});
        owned.emplace_back(&rx, r);
        recvs.push_back(r);
      }
    }
  });
  cluster.wait_all(sends);
  cluster.world().run_until(
      [&]() { return recvs.size() == kSenders * kMsgs; });
  cluster.wait_all(recvs);

  OverloadRow row;
  row.receiver = rx.stats();
  row.sender = cluster.core(1).stats();
  row.end_time_us = cluster.now();
  for (size_t n = 0; n < options.nodes; ++n) {
    row.frames_dropped += cluster.fabric()
                              .node(static_cast<simnet::NodeId>(n))
                              .nic(0)
                              .counters()
                              .frames_dropped;
  }
  for (size_t s = 0; s < kSenders && row.data_ok; ++s) {
    for (size_t i = 0; i < kMsgs; ++i) {
      if (!util::check_pattern({in[s][i].data(), kMsgBytes},
                               static_cast<int>(s * kMsgs + i))) {
        row.data_ok = false;
        break;
      }
    }
  }
  for (auto& [owner, r] : owned) owner->release(r);
  return row;
}

core::CoreConfig flow_config(size_t budget) {
  core::CoreConfig c;
  c.flow_control = true;
  c.rx_budget = budget;
  c.initial_credit_bytes = budget / kSenders;
  c.initial_credit_msgs = 16;
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  // When the late receives finally post, ~100 granted rendezvous bodies
  // storm the receiver's one rail at once; acks queue past the timeout
  // and the dead-rail heuristic would misread the congestion as loss.
  c.rail_dead_after = 0;
  return c;
}

}  // namespace

int main() {
  util::Table table({"config", "budget", "store_hwm", "held_at_sender",
                     "rdv_degrades", "grants", "drops", "finish_ms",
                     "data"});
  auto add = [&](const char* name, size_t budget, const OverloadRow& r) {
    table.add_row(
        {name, budget == 0 ? "-" : util::format_size(budget),
         util::format_size(r.receiver.rx_stored_hwm),
         std::to_string(r.sender.credit_stalls),
         std::to_string(r.sender.credit_rdv_degrades),
         std::to_string(r.receiver.credit_grants),
         std::to_string(r.frames_dropped),
         util::format_fixed(r.end_time_us / 1000.0, 2),
         r.data_ok ? "ok" : "CORRUPT"});
  };

  core::CoreConfig off;
  off.reliability = true;
  off.ack_timeout_us = 200.0;
  off.ack_delay_us = 5.0;
  off.rail_dead_after = 0;
  add("no-credit", 0, run_overload(std::move(off)));
  for (size_t budget : {64 * 1024, 128 * 1024, 256 * 1024}) {
    add("credits", budget, run_overload(flow_config(budget)));
  }

  std::printf("## Extension — receiver overload: %zu senders x %zu x %s, "
              "receives posted %.0f ms late\n",
              kSenders, kMsgs, util::format_size(kMsgBytes).c_str(),
              kPostDelayUs / 1000.0);
  table.print();
  std::printf(
      "\nreading: without credits the unexpected store absorbs the whole\n"
      "burst (hwm ~ total traffic); with credits the peak stays at or\n"
      "under the budget and the backlog moves to the senders — held in\n"
      "their windows or demoted to rendezvous, which parks zero payload\n"
      "at the receiver. No configuration drops a frame; the finish time\n"
      "is set by the late receives, not by the flow control.\n\n");
  return 0;
}
