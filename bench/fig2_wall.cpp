// Figure 2, wall-clock edition: the same raw ping-pong size sweep as
// fig2_pingpong, but on real time — two engine Cores in one process,
// each on its own WallClockRuntime, joined by the threaded
// shared-memory rail. Nothing here is simulated: the latencies are
// steady_clock measurements of the identical Core/strategy/protocol
// stack the virtual-time figures exercise, which is the point — the
// runtime seam swaps the clock and the rail, not the engine.
//
// --json writes the BENCH_wall.json artifact (mean/p99/p999/max per
// size) that scripts/bench.sh checks in next to the simulated figures.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "nmad/api/wall_session.hpp"
#include "util/buffer.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

// One full round trip (A→B then B→A), returned in µs. The figure-2
// convention halves it: one-way latency of a pingpong. Distinct
// out/in buffers per endpoint — in one address space the sender's read
// and the receiver's deposit would otherwise race on the same bytes.
double roundtrip_us(api::WallCluster& cluster, uint64_t tag, uint64_t size,
                    std::vector<std::byte>& out, std::vector<std::byte>& in) {
  const auto t0 = std::chrono::steady_clock::now();
  core::Request* s0 = cluster.post_send(0, cluster.gate(0, 1), tag,
                                        util::ConstBytes{out.data(), size});
  core::Request* r0 = cluster.post_recv(1, cluster.gate(1, 0), tag,
                                        util::MutableBytes{in.data(), size});
  cluster.wait(0, s0);
  cluster.wait(1, r0);
  cluster.release(0, s0);
  cluster.release(1, r0);
  core::Request* s1 = cluster.post_send(1, cluster.gate(1, 0), tag,
                                        util::ConstBytes{in.data(), size});
  core::Request* r1 = cluster.post_recv(0, cluster.gate(0, 1), tag,
                                        util::MutableBytes{out.data(), size});
  cluster.wait(1, s1);
  cluster.wait(0, r1);
  cluster.release(1, s1);
  cluster.release(0, r1);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

util::QuantileDigest measure(api::WallCluster& cluster, uint64_t size,
                             int iters, uint64_t* tag) {
  std::vector<std::byte> out(size), in(size);
  util::fill_pattern({out.data(), size}, size);
  for (int w = 0; w < 10; ++w) roundtrip_us(cluster, (*tag)++, size, out, in);
  util::QuantileDigest d;
  for (int i = 0; i < iters; ++i) {
    d.add(roundtrip_us(cluster, (*tag)++, size, out, in) / 2.0);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("min", "4", "smallest message size");
  flags.define("max", "1M", "largest message size");
  flags.define("iters", "100", "timed rounds per size");
  flags.define_bool("csv", false, "emit CSV instead of a table");
  flags.define("json", "",
               "write the machine-readable artifact (mean/p99/p999/max per "
               "size) to this path");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    flags.print_help(argv[0]);
    return 2;
  }
  const uint64_t min_size = flags.get_size("min");
  const uint64_t max_size = flags.get_size("max");
  const int iters = flags.get_int("iters");
  const std::string json = flags.get("json");

  api::WallCluster cluster(api::WallCluster::Options{});

  util::Table table(
      {"size", "lat_us", "p99_us", "p999_us", "max_us", "bw_MBps"});
  std::FILE* f = nullptr;
  if (!json.empty()) {
    f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig2_wall\",\n  \"unit\": \"us\",\n"
                 "  \"driver\": \"shm\",\n  \"iters\": %d,\n  \"rows\": [",
                 iters);
  }

  uint64_t tag = 1;
  bool first = true;
  for (uint64_t size : util::doubling_sizes(min_size, max_size)) {
    const util::QuantileDigest d = measure(cluster, size, iters, &tag);
    const double bw =
        d.mean() > 0.0 ? static_cast<double>(size) / d.mean() : 0.0;
    table.add_row({util::format_size(size), util::format_fixed(d.mean(), 2),
                   util::format_fixed(d.p99(), 2),
                   util::format_fixed(d.p999(), 2),
                   util::format_fixed(d.max(), 2),
                   util::format_fixed(bw, 1)});
    if (f != nullptr) {
      std::fprintf(f,
                   "%s\n    {\"size\": %llu, \"mean_us\": %.3f, "
                   "\"p99_us\": %.3f, \"p999_us\": %.3f, \"max_us\": %.3f, "
                   "\"bw_MBps\": %.1f}",
                   first ? "" : ",", static_cast<unsigned long long>(size),
                   d.mean(), d.p99(), d.p999(), d.max(), bw);
      first = false;
    }
  }

  std::printf("## Figure 2 (wall clock) — shm ping-pong, two cores, "
              "one process\n");
  if (flags.get_bool("csv")) {
    table.print_csv(stdout);
  } else {
    table.print();
  }
  if (f != nullptr) {
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
