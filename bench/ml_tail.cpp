// ML-style traffic under a flapping rail: tail latency of spray vs split.
//
// Two collective-shaped generators drive a 4-node cluster whose second
// rail goes dark for 500µs every 3ms (the PR-4 rail-flap profile):
//
//   ring-allreduce — every rank exchanges a bucket slice with its ring
//                    neighbours for 2*(N-1) steps per round, the
//                    bucketed allreduce an ML framework issues per
//                    gradient tensor;
//   ps-incast      — N-1 workers push gradients at one parameter server,
//                    which answers each with fresh parameters — the
//                    many-to-one burst that makes incast pathological.
//
// Each round is timed individually on the virtual clock into a quantile
// digest, so the table shows mean AND p99/p999/max. The comparison is
// per-packet multipath spraying (CoreConfig::spray) against the paper's
// per-segment split_balance strategy on identical traffic and faults:
// spray keeps every fragment individually re-routable, so one blackout
// costs a fragment re-issue instead of a stalled half-message — the
// difference lives in the tail, which is the whole point.
#include <cstdio>
#include <string>
#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nmad;

constexpr size_t kNodes = 4;

struct RunResult {
  util::QuantileDigest round_us;
  uint64_t spray_reissues = 0;
  uint64_t rails_failed = 0;
  uint64_t rails_revived = 0;
  // Pool growths during the timed phase, across every engine. The warmup
  // rounds size the pools; the measured phase must then be allocation-free
  // even while rails flap, peers crash and gates rejoin.
  uint64_t steady_allocs = 0;
};

// Sum of every engine pool's monotone grow counter.
uint64_t total_pool_grows(api::Cluster& cluster) {
  uint64_t g = 0;
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    const core::Core::AllocStats s = cluster.core(n).alloc_stats();
    g += s.chunk_pool_grows + s.bulk_pool_grows + s.send_pool_grows +
         s.recv_pool_grows;
  }
  return g;
}

// The PR-4 flapping-rail shape: rail 0 healthy, rail 1 dark 500µs every
// 3ms, heartbeat monitor tuned to declare death after 300µs of silence
// and revive through probation in the bright gap.
api::ClusterOptions flap_options(bool spray) {
  api::ClusterOptions options;
  options.nodes = kNodes;

  simnet::NicProfile base_rail;
  simnet::nic_profile_by_name("mx", &base_rail);
  simnet::NicProfile flap_rail = base_rail;
  for (int i = 0; i < 4000; ++i) {
    const double begin = 2500.0 + 3000.0 * i;
    flap_rail.fault.blackouts.push_back({begin, begin + 500.0});
  }
  options.rails = {base_rail, flap_rail};

  core::CoreConfig& cfg = options.core;
  cfg.rail_health = true;  // implies reliability
  cfg.ack_timeout_us = 200.0;
  cfg.ack_delay_us = 5.0;
  cfg.rail_dead_after = 0;
  cfg.max_retries = 20;
  cfg.heartbeat_interval_us = 50.0;
  cfg.suspect_after_us = 150.0;
  cfg.dead_after_us = 300.0;
  cfg.probe_interval_us = 100.0;
  cfg.probation_replies = 2;
  // Both sides of the comparison move the gradient through the
  // rendezvous path; only the body scheduling differs.
  cfg.rdv_threshold_override = 4096;
  if (spray) {
    cfg.spray = true;
  } else {
    cfg.strategy = "split_balance";
  }
  return options;
}

// The gray-failure shape: no blackouts at all — rail 1 keeps beaconing
// but silently drops 5% of its track-0 frames forever. The comparison is
// closed-loop adaptive spray (the continuous score detects the gray rail
// and election evicts it from the stripe set) against the same spray
// machinery with scoring off (static round-robin stripes that keep
// feeding the lossy rail and eat the retransmit tail).
api::ClusterOptions gray_options(bool adaptive) {
  api::ClusterOptions options;
  options.nodes = kNodes;

  simnet::NicProfile base_rail;
  simnet::nic_profile_by_name("mx", &base_rail);
  simnet::NicProfile gray_rail = base_rail;
  gray_rail.fault.seed = 0x6E47ull;
  gray_rail.fault.frame_drop_prob = 0.05;
  options.rails = {base_rail, gray_rail};

  core::CoreConfig& cfg = options.core;
  cfg.rail_health = true;  // implies reliability
  cfg.ack_timeout_us = 200.0;
  cfg.ack_delay_us = 5.0;
  cfg.rail_dead_after = 0;
  cfg.max_retries = 20;
  cfg.heartbeat_interval_us = 50.0;
  // The gray rail must never die of silence: beacons flow through the 5%
  // loss, and the suspect/death thresholds sit beyond any plausible
  // beacon-loss streak. Only the adaptive score can act on this rail.
  cfg.suspect_after_us = 400.0;
  cfg.dead_after_us = 2000.0;
  cfg.probe_interval_us = 100.0;
  cfg.probation_replies = 2;
  cfg.rdv_threshold_override = 4096;
  cfg.spray = true;
  cfg.adaptive = adaptive;
  return options;
}

// Re-arming beacons and a packet mid-flight at teardown would leak pool
// chunks; settle the cluster before it destructs.
void settle(api::Cluster& cluster) {
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    cluster.core(n).stop_health_monitors();
  }
  while (cluster.world().run_one()) {
  }
}

void collect_stats(api::Cluster& cluster, RunResult* out) {
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    const core::CoreStats& s = cluster.core(n).stats();
    out->spray_reissues += s.spray_reissues;
    out->rails_failed += s.rails_failed;
    out->rails_revived += s.rails_revived;
  }
}

// Bucketed ring allreduce: reduce-scatter then allgather, 2*(N-1) steps,
// every rank sending its current slice right and receiving from the left.
RunResult run_allreduce(api::ClusterOptions opts, size_t slice, int rounds,
                        int warmup) {
  api::Cluster cluster(std::move(opts));
  std::vector<std::vector<std::byte>> tx(kNodes), rx(kNodes);
  for (size_t n = 0; n < kNodes; ++n) {
    tx[n].resize(slice);
    rx[n].resize(slice);
    util::fill_pattern({tx[n].data(), slice}, 40 + static_cast<int>(n));
  }

  RunResult result;
  uint64_t warm_grows = 0;
  core::Tag tag = 0;
  for (int round = 0; round < warmup + rounds; ++round) {
    if (round == warmup) warm_grows = total_pool_grows(cluster);
    const double t0 = cluster.now();
    for (size_t step = 0; step < 2 * (kNodes - 1); ++step) {
      std::vector<core::Request*> reqs;
      for (size_t r = 0; r < kNodes; ++r) {
        const size_t right = (r + 1) % kNodes;
        const size_t left = (r + kNodes - 1) % kNodes;
        reqs.push_back(cluster.core(r).irecv(
            cluster.gate(r, left), tag,
            util::MutableBytes{rx[r].data(), slice}));
        reqs.push_back(cluster.core(r).isend(
            cluster.gate(r, right), tag,
            util::ConstBytes{tx[r].data(), slice}));
      }
      cluster.wait_all(reqs);
      for (size_t r = 0; r < kNodes; ++r) {
        cluster.core(r).release(reqs[2 * r]);
        cluster.core(r).release(reqs[2 * r + 1]);
      }
      ++tag;
    }
    if (round >= warmup) result.round_us.add(cluster.now() - t0);
  }
  result.steady_allocs = total_pool_grows(cluster) - warm_grows;
  collect_stats(cluster, &result);
  settle(cluster);
  return result;
}

// Parameter-server incast: workers 1..N-1 push a gradient at rank 0
// simultaneously; the server answers each with updated parameters. The
// round completes when every worker holds fresh parameters.
RunResult run_incast(api::ClusterOptions opts, size_t grad, int rounds,
                     int warmup) {
  api::Cluster cluster(std::move(opts));
  core::Core& server = cluster.core(0);
  std::vector<std::byte> params(grad);
  util::fill_pattern({params.data(), grad}, 7);
  std::vector<std::vector<std::byte>> grads(kNodes), inbox(kNodes),
      fresh(kNodes);
  for (size_t w = 1; w < kNodes; ++w) {
    grads[w].resize(grad);
    inbox[w].resize(grad);
    fresh[w].resize(grad);
    util::fill_pattern({grads[w].data(), grad}, 80 + static_cast<int>(w));
  }

  RunResult result;
  uint64_t warm_grows = 0;
  core::Tag tag = 0;
  for (int round = 0; round < warmup + rounds; ++round) {
    if (round == warmup) warm_grows = total_pool_grows(cluster);
    const double t0 = cluster.now();
    std::vector<core::Request*> push;
    std::vector<core::Request*> server_rx(kNodes, nullptr);
    for (size_t w = 1; w < kNodes; ++w) {
      server_rx[w] = server.irecv(cluster.gate(0, w), tag,
                                  util::MutableBytes{inbox[w].data(), grad});
      push.push_back(cluster.core(w).isend(
          cluster.gate(w, 0), tag, util::ConstBytes{grads[w].data(), grad}));
    }
    // The server turns each gradient around as soon as it lands.
    std::vector<core::Request*> reply(kNodes, nullptr);
    std::vector<core::Request*> fetch(kNodes, nullptr);
    for (size_t w = 1; w < kNodes; ++w) {
      fetch[w] = cluster.core(w).irecv(
          cluster.gate(w, 0), tag, util::MutableBytes{fresh[w].data(), grad});
    }
    for (size_t w = 1; w < kNodes; ++w) {
      cluster.wait(server_rx[w]);
      reply[w] = server.isend(cluster.gate(0, w), tag,
                              util::ConstBytes{params.data(), grad});
    }
    for (size_t w = 1; w < kNodes; ++w) {
      cluster.wait(fetch[w]);
      cluster.wait(reply[w]);
    }
    for (size_t w = 1; w < kNodes; ++w) {
      cluster.wait(push[w - 1]);
      cluster.core(w).release(push[w - 1]);
      cluster.core(w).release(fetch[w]);
      server.release(server_rx[w]);
      server.release(reply[w]);
    }
    ++tag;
    if (round >= warmup) result.round_us.add(cluster.now() - t0);
  }
  result.steady_allocs = total_pool_grows(cluster) - warm_grows;
  collect_stats(cluster, &result);
  settle(cluster);
  return result;
}

// Peer-crash/rejoin cycles on a 2-node pair: the worker node dies for
// 1.5ms out of every 6ms. A gradient push is mid-flight each time the
// lights go out — the lifecycle must unwind it with kPeerDead, fence the
// dead incarnation, and rejoin the restarted peer; the cycle closes with
// the first verified exchange of the new incarnation. The timed quantity
// is the recovery latency past the dark window: detect + probation +
// rejoin handshake + one verified round-trip.
RunResult run_crash(size_t grad, int rounds, int warmup) {
  constexpr double kFirstUs = 2000.0;
  constexpr double kCycleUs = 6000.0;
  constexpr double kDarkUs = 1500.0;

  api::ClusterOptions options;
  options.nodes = 2;
  simnet::NicProfile rail;
  simnet::nic_profile_by_name("mx", &rail);
  options.rails = {rail, rail};
  core::CoreConfig& cfg = options.core;
  cfg.peer_lifecycle = true;  // implies rail_health, implies reliability
  cfg.ack_timeout_us = 200.0;
  cfg.ack_delay_us = 5.0;
  cfg.rail_dead_after = 0;
  cfg.max_retries = 20;
  cfg.heartbeat_interval_us = 50.0;
  cfg.suspect_after_us = 150.0;
  cfg.dead_after_us = 300.0;
  cfg.probe_interval_us = 100.0;
  cfg.probation_replies = 2;
  cfg.peer_death_grace_us = 150.0;
  cfg.rdv_threshold_override = 4096;
  api::Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<simnet::FaultWindow> crashes;
  for (int i = 0; i < warmup + rounds; ++i) {
    const double begin = kFirstUs + kCycleUs * i;
    crashes.push_back({begin, begin + kDarkUs});
  }
  cluster.fabric().set_node_crashes(1, crashes);

  std::vector<std::byte> out(grad), in(grad);
  util::fill_pattern({out.data(), grad}, 11);

  RunResult result;
  uint64_t warm_grows = 0;
  core::Tag tag = 0;
  for (int round = 0; round < warmup + rounds; ++round) {
    if (round == warmup) warm_grows = total_pool_grows(cluster);
    const double begin = kFirstUs + kCycleUs * round;
    while (cluster.now() < begin - 20.0 && cluster.world().run_one()) {
    }
    // Caught mid-rendezvous by the crash.
    core::Request* victim =
        a.isend(cluster.gate(0, 1), tag++, util::ConstBytes{out.data(), grad});
    const uint64_t a_rejoined = a.stats().peers_rejoined;
    const uint64_t b_rejoined = b.stats().peers_rejoined;
    while ((a.stats().peers_rejoined == a_rejoined ||
            b.stats().peers_rejoined == b_rejoined) &&
           cluster.world().run_one()) {
    }
    // First verified exchange of the new incarnation, both directions.
    core::Request* rx = b.irecv(cluster.gate(1, 0), tag,
                                util::MutableBytes{in.data(), grad});
    core::Request* tx = a.isend(cluster.gate(0, 1), tag,
                                util::ConstBytes{out.data(), grad});
    ++tag;
    core::Request* rx2 = a.irecv(cluster.gate(0, 1), tag,
                                 util::MutableBytes{in.data(), grad});
    core::Request* tx2 = b.isend(cluster.gate(1, 0), tag,
                                 util::ConstBytes{out.data(), grad});
    ++tag;
    cluster.wait(rx);
    cluster.wait(tx);
    cluster.wait(rx2);
    cluster.wait(tx2);
    if (!victim->done()) cluster.wait(victim);
    a.release(victim);  // kPeerDead from the unwind, or ok if it raced in
    a.release(tx);
    a.release(rx2);
    b.release(rx);
    b.release(tx2);
    if (round >= warmup) {
      result.round_us.add(cluster.now() - (begin + kDarkUs));
    }
  }
  result.steady_allocs = total_pool_grows(cluster) - warm_grows;
  collect_stats(cluster, &result);
  settle(cluster);
  return result;
}

void add_row(util::Table* table, const std::string& scenario,
             const std::string& sched, size_t size, const RunResult& r) {
  const util::QuantileDigest& d = r.round_us;
  table->add_row({scenario, sched, util::format_size(size),
                  util::format_fixed(d.mean(), 2),
                  util::format_fixed(d.quantile(0.99), 2),
                  util::format_fixed(d.quantile(0.999), 2),
                  util::format_fixed(d.max(), 2),
                  std::to_string(r.spray_reissues),
                  std::to_string(r.rails_failed),
                  std::to_string(r.steady_allocs)});
}

void json_row(std::FILE* f, bool first, const std::string& scenario,
              const std::string& sched, size_t size, const RunResult& r) {
  const util::QuantileDigest& d = r.round_us;
  std::fprintf(
      f,
      "%s\n    {\"scenario\": \"%s\", \"sched\": \"%s\", \"size\": %zu, "
      "\"rounds\": %llu, \"mean_us\": %.3f, \"p99_us\": %.3f, "
      "\"p999_us\": %.3f, \"max_us\": %.3f, \"spray_reissues\": %llu, "
      "\"rails_failed\": %llu, \"steady_allocs\": %llu}",
      first ? "" : ",", scenario.c_str(), sched.c_str(), size,
      static_cast<unsigned long long>(d.count()), d.mean(),
      d.quantile(0.99), d.quantile(0.999), d.max(),
      static_cast<unsigned long long>(r.spray_reissues),
      static_cast<unsigned long long>(r.rails_failed),
      static_cast<unsigned long long>(r.steady_allocs));
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.define("scenario", "all",
               "allreduce, incast, gray, crash, or all");
  flags.define("size", "64K",
               "bucket slice / gradient size per message (rendezvous path "
               "needs >= 4K)");
  flags.define("rounds", "200", "timed rounds per cell (tail sharpness)");
  flags.define("warmup", "3", "untimed warmup rounds");
  flags.define_bool("csv", false, "emit CSV instead of a table");
  flags.define("json", "", "also write a machine-readable artifact here");
  if (auto st = flags.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    flags.print_help(argv[0]);
    return 2;
  }

  const std::string scenario = flags.get("scenario");
  const size_t size = flags.get_size("size");
  const int rounds = flags.get_int("rounds");
  const int warmup = flags.get_int("warmup");

  struct Cell {
    std::string scenario;
    std::string sched;
    RunResult result;
  };
  std::vector<Cell> cells;
  if (scenario == "allreduce" || scenario == "all") {
    cells.push_back({"ring-allreduce", "spray",
                     run_allreduce(flap_options(true), size, rounds, warmup)});
    cells.push_back({"ring-allreduce", "split",
                     run_allreduce(flap_options(false), size, rounds, warmup)});
  }
  if (scenario == "incast" || scenario == "all") {
    cells.push_back({"ps-incast", "spray",
                     run_incast(flap_options(true), size, rounds, warmup)});
    cells.push_back({"ps-incast", "split",
                     run_incast(flap_options(false), size, rounds, warmup)});
  }
  if (scenario == "gray" || scenario == "all") {
    cells.push_back({"gray-allreduce", "adaptive",
                     run_allreduce(gray_options(true), size, rounds, warmup)});
    cells.push_back({"gray-allreduce", "static",
                     run_allreduce(gray_options(false), size, rounds, warmup)});
    cells.push_back({"gray-incast", "adaptive",
                     run_incast(gray_options(true), size, rounds, warmup)});
    cells.push_back({"gray-incast", "static",
                     run_incast(gray_options(false), size, rounds, warmup)});
  }
  if (scenario == "crash" || scenario == "all") {
    cells.push_back(
        {"peer-crash", "lifecycle", run_crash(size, rounds, warmup)});
  }
  if (cells.empty()) {
    std::fprintf(stderr, "unknown scenario: %s\n", scenario.c_str());
    return 2;
  }

  util::Table table({"scenario", "sched", "size", "mean_us", "p99_us",
                     "p999_us", "max_us", "reissues", "rail_deaths",
                     "allocs"});
  for (const Cell& c : cells) {
    add_row(&table, c.scenario, c.sched, size, c.result);
  }
  if (scenario == "crash") {
    std::printf("## ML-style traffic under peer crash/rejoin cycles "
                "(2 nodes, 2 rails, worker dark 1.5ms every 6ms)\n");
  } else if (scenario == "gray") {
    std::printf("## ML-style traffic under a gray rail "
                "(4 nodes, 2 rails, rail 1 dropping 5%% but beaconing)\n");
  } else if (scenario == "all") {
    std::printf("## ML-style traffic, rail-flap (spray vs split) and "
                "gray-rail (adaptive vs static) profiles\n");
  } else {
    std::printf("## ML-style traffic under rail flap "
                "(4 nodes, 2 rails, rail 1 dark 500us every 3ms)\n");
  }
  if (flags.get_bool("csv")) {
    table.print_csv(stdout);
  } else {
    table.print();
  }
  std::printf("\n");

  const std::string json = flags.get("json");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ml_tail\",\n  \"unit\": \"us\",\n"
                 "  \"rows\": [");
    for (size_t i = 0; i < cells.size(); ++i) {
      json_row(f, i == 0, cells[i].scenario, cells[i].sched, size,
               cells[i].result);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
